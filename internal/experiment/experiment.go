// Package experiment implements §3.1 of the paper — the experiment stage
// of Figure 2 that generates the DQ4DM knowledge base. Phase 1 applies
// algorithms "in the presence of data quality criteria" injected one at a
// time over a severity sweep; Phase 2 applies "a mixed set of data quality
// criteria"; the results populate kb.KnowledgeBase.
//
// Runs fan out over a bounded worker pool; every task derives its own
// deterministic seed, so results are identical regardless of parallelism.
// Both phases honour context cancellation between grid cells — an
// in-flight cross-validation finishes, but no new cell starts once the
// context is done — and can stream per-record completion through
// Config.Progress for observability.
package experiment

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
)

// Event is one progress notification: a grid record finished. Events are
// emitted serially (never two at once), so sinks need no locking of their
// own, but they run on the worker's goroutine — keep them fast.
type Event struct {
	// Phase is 1 for the simple-criterion sweep, 2 for mixed combinations.
	Phase int
	// Algorithm, Criterion and Severity locate the finished record;
	// Criterion is "clean" for baselines and "a+b" for Phase-2 combos.
	Algorithm string
	Criterion string
	Severity  float64
	// Dataset names the corpus the record belongs to (multi-corpus runs
	// interleave several).
	Dataset string
	// Restored marks a record replayed from a checkpoint journal instead
	// of executed; resumed runs emit one Restored event per journaled cell
	// before any new cell starts, so Completed still counts to Total.
	Restored bool
	// Completed counts records finished in this phase so far (including
	// this one); Total is the phase's size *for this run* — the full grid
	// for monolithic runs, only the owned cells for a shard run (compare
	// kb.ShardMeta's PhaseNTotal fields for the whole-grid sizes).
	Completed int
	Total     int
}

// Config parameterizes a run.
type Config struct {
	// Algorithms maps registry names to factories; nil means the standard
	// suite (mining.StandardSuite).
	Algorithms map[string]mining.Factory
	// Criteria lists the criteria to sweep; nil means dq.AllCriteria().
	Criteria []dq.Criterion
	// Severities is the sweep grid; nil means {0, 0.1, 0.2, 0.3, 0.4, 0.5}.
	// Severity 0 rows become the clean baselines.
	Severities []float64
	// Mechanism applies to the Completeness criterion (default MCAR).
	Mechanism inject.Mechanism
	// Folds is the cross-validation fold count (default 5).
	Folds int
	// Seed is the base seed; per-task seeds derive from it.
	Seed int64
	// Workers bounds parallelism (default runtime.GOMAXPROCS(0)).
	Workers int
	// Progress, when non-nil, receives one Event per completed record.
	// Calls are serialized across workers.
	Progress func(Event)
}

func (c *Config) applyDefaults() {
	if c.Algorithms == nil {
		c.Algorithms = mining.StandardSuite(c.Seed)
	}
	if c.Criteria == nil {
		c.Criteria = dq.AllCriteria()
	}
	if c.Severities == nil {
		c.Severities = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.Folds < 2 {
		c.Folds = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// AlgorithmNames returns the configured algorithm names, sorted.
func (c *Config) AlgorithmNames() []string {
	out := make([]string, 0, len(c.Algorithms))
	for n := range c.Algorithms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// progress serializes Event delivery from concurrent workers and owns the
// per-phase Completed counter.
type progress struct {
	mu      sync.Mutex
	sink    func(Event)
	phase   int
	total   int
	dataset string
	done    int
}

func newProgress(sink func(Event), phase, total int, dataset string) *progress {
	return &progress{sink: sink, phase: phase, total: total, dataset: dataset}
}

func (p *progress) record(algorithm, criterion string, severity float64) {
	p.emit(algorithm, criterion, severity, false)
}

func (p *progress) restored(algorithm, criterion string, severity float64) {
	p.emit(algorithm, criterion, severity, true)
}

func (p *progress) emit(algorithm, criterion string, severity float64, restored bool) {
	if p == nil || p.sink == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.sink(Event{
		Phase:     p.phase,
		Algorithm: algorithm,
		Criterion: criterion,
		Severity:  severity,
		Dataset:   p.dataset,
		Restored:  restored,
		Completed: p.done,
		Total:     p.total,
	})
}

// taskSeed derives a stable per-task seed from the run seed and the task
// coordinates, so adding workers or reordering tasks cannot change results.
func taskSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", base)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// cellCoord addresses one prepared dataset of the Phase-1 grid without
// materializing it: the injected criterion and severity (severity 0 is the
// clean cell; its criterion is meaningless).
type cellCoord struct {
	criterion dq.Criterion
	severity  float64
}

// name is the criterion label a record at this coordinate carries —
// "clean" for the severity-0 cell.
func (c cellCoord) name() string {
	if c.severity == 0 {
		return "clean"
	}
	return c.criterion.String()
}

// cellCoords enumerates the Phase-1 cells in canonical order: the clean
// cell first, then criterion-major severity sweeps. Every grid consumer —
// monolithic runs, shard plans, checkpoints — derives cell indices from
// this one enumeration, which is what makes shard outputs recombinable.
func cellCoords(cfg Config) []cellCoord {
	coords := []cellCoord{{severity: 0}}
	for _, crit := range cfg.Criteria {
		for _, sev := range cfg.Severities {
			if sev == 0 {
				continue
			}
			coords = append(coords, cellCoord{criterion: crit, severity: sev})
		}
	}
	return coords
}

// cell is one corrupted dataset shared by every algorithm — the paper's
// method evaluates all techniques on the same prepared test datasets
// (§3.1 step 2), which also lets the record carry the dq-measured severity
// of the injected defect.
//
// Cells are the only materialization point of the grid: inject.Apply
// copy-on-writes exactly the columns a defect touches, the clean cell is
// the caller's dataset itself, and every split below a cell (fold train/
// test sets, bootstrap resamples) is a zero-copy view into it. The cell's
// table is never mutated after construction, which is what makes sharing
// it across the worker pool safe.
type cell struct {
	criterion dq.Criterion
	severity  float64 // injected; 0 marks the clean cell
	ds        *mining.Dataset
	measured  float64            // measured severity of the injected criterion
	measures  map[string]float64 // clean cell: measured severity per criterion
}

// prepareCells materializes the cells of cellCoords(cfg), honouring ctx
// between cells. A non-nil need filter skips (leaves zero) cells no owned
// task touches — shard runs corrupt only their slice of the grid. The
// injection seed depends only on the cell's coordinates, so a cell's
// content is identical no matter which process prepares it.
func prepareCells(ctx context.Context, cfg Config, ds *mining.Dataset, need func(i int) bool) ([]cell, error) {
	cleanProfile := dq.Measure(ds.Table(), dq.MeasureOptions{ClassColumn: ds.ClassCol})
	cleanMeasures := map[string]float64{}
	for _, c := range dq.AllCriteria() {
		cleanMeasures[c.String()] = cleanProfile.Severity(c)
	}
	coords := cellCoords(cfg)
	cells := make([]cell, len(coords))
	cells[0] = cell{severity: 0, ds: ds, measures: cleanMeasures}
	for i, co := range coords {
		if i == 0 {
			continue
		}
		if need != nil && !need(i) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := taskSeed(cfg.Seed, "inject", co.criterion.String(), fmt.Sprintf("%.3f", co.severity))
		corrupted, err := inject.Apply(ds.T, ds.ClassCol,
			[]inject.Spec{{Criterion: co.criterion, Severity: co.severity, Mechanism: cfg.Mechanism}}, seed)
		if err != nil {
			return nil, fmt.Errorf("experiment: injecting %s@%.2f: %w", co.criterion, co.severity, err)
		}
		evalDS, err := mining.NewDataset(corrupted, ds.ClassCol)
		if err != nil {
			return nil, err
		}
		profile := dq.Measure(corrupted, dq.MeasureOptions{ClassColumn: ds.ClassCol})
		cells[i] = cell{
			criterion: co.criterion,
			severity:  co.severity,
			ds:        evalDS,
			measured:  profile.Severity(co.criterion),
		}
	}
	// Presort every cell's numeric columns before fanning tasks out: the
	// index is shared by all fold splits, bootstrap resamples and forest
	// members below a cell, and building it here means workers only ever
	// read it.
	for i := range cells {
		if cells[i].ds != nil {
			cells[i].ds.Index()
		}
	}
	return cells, nil
}

// p1Task is one addressable unit of the Phase-1 grid: an algorithm
// evaluated on one cell. Its position in p1Tasks is the record's canonical
// index, shared by monolithic runs, shard plans and checkpoints.
type p1Task struct {
	algorithm string
	cell      int // index into cellCoords(cfg)
}

// p1Tasks enumerates the Phase-1 grid in canonical (algorithm-major, cell
// order) sequence.
func p1Tasks(cfg Config, nCells int) []p1Task {
	tasks := make([]p1Task, 0, len(cfg.Algorithms)*nCells)
	for _, alg := range cfg.AlgorithmNames() {
		for c := 0; c < nCells; c++ {
			tasks = append(tasks, p1Task{algorithm: alg, cell: c})
		}
	}
	return tasks
}

// runP1Task executes one Phase-1 grid cell. Everything that shapes the
// record — seeds, folds, measured severities — derives from the task's
// coordinates, never from execution order, which is what makes sharded and
// resumed runs byte-identical to monolithic ones.
func runP1Task(cfg Config, cells []cell, datasetName string, tk p1Task, arena *mining.Arena) (kb.Record, error) {
	cl := cells[tk.cell]
	rec := kb.Record{
		Algorithm:        tk.algorithm,
		Criterion:        "clean",
		Severity:         cl.severity,
		MeasuredSeverity: cl.measured,
		MeasuredAll:      cl.measures,
		Dataset:          datasetName,
		Folds:            cfg.Folds,
	}
	if cl.severity > 0 {
		rec.Criterion = cl.criterion.String()
		if cl.criterion == dq.Completeness {
			rec.Mechanism = cfg.Mechanism.String()
		}
	}
	cvSeed := taskSeed(cfg.Seed, "cv", tk.algorithm, rec.Criterion, fmt.Sprintf("%.3f", rec.Severity))
	rec.Seed = cvSeed
	m, err := eval.CrossValidateWith(cfg.Algorithms[tk.algorithm], cl.ds, cfg.Folds, cvSeed, arena)
	if err != nil {
		return kb.Record{}, fmt.Errorf("experiment: %s on %s@%.2f: %w", tk.algorithm, rec.Criterion, rec.Severity, err)
	}
	rec.Metrics = m
	return rec, nil
}

// runGrid executes fn(i, worker) for i in [0,n) over a pool of fixed
// worker goroutines, honouring ctx between cells: when ctx is done,
// running cells finish, no new cell starts, and runGrid returns
// ctx.Err(). Otherwise the first non-nil fn error (in task order) is
// returned.
//
// Unlike a goroutine-per-task design, the fixed pool gives every task a
// stable worker identity in [0, workers) — the hook that lets callers key
// single-goroutine scratch state (mining.Arena) to a worker so it is
// reused across all the tasks that worker processes, without any locking.
func runGrid(ctx context.Context, workers, n int, fn func(i, worker int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	tasks := make(chan int)
	go func() {
		defer close(tasks)
		for i := 0; i < n; i++ {
			select {
			case tasks <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range tasks {
				if ctx.Err() != nil {
					return
				}
				errs[i] = fn(i, w)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// workerArenas returns one scratch arena per grid worker. Arenas are
// single-goroutine state; keying them to the fixed worker index is what
// keeps the reuse lock-free.
func workerArenas(workers int) []*mining.Arena {
	arenas := make([]*mining.Arena, workers)
	for i := range arenas {
		arenas[i] = mining.NewArena()
	}
	return arenas
}

// Phase1 runs the simple-criterion grid on a clean dataset and returns one
// kb.Record per (algorithm × criterion × severity) cell. The severity-0
// cell is evaluated once per algorithm and recorded with Criterion
// "clean"; its record carries the clean data's measured severity for every
// criterion (the advisor's curve anchors).
//
// Cancellation is honoured between grid cells: when ctx is done, running
// cells finish, no new cell starts, and Phase1 returns ctx.Err().
func Phase1(ctx context.Context, cfg Config, ds *mining.Dataset, datasetName string) ([]kb.Record, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.applyDefaults()
	cells, err := prepareCells(ctx, cfg, ds, nil)
	if err != nil {
		return nil, err
	}
	tasks := p1Tasks(cfg, len(cells))
	prog := newProgress(cfg.Progress, 1, len(tasks), datasetName)
	records := make([]kb.Record, len(tasks))
	arenas := workerArenas(cfg.Workers)
	err = runGrid(ctx, cfg.Workers, len(tasks), func(i, w int) error {
		rec, err := runP1Task(cfg, cells, datasetName, tasks[i], arenas[w])
		if err != nil {
			return err
		}
		records[i] = rec
		prog.record(rec.Algorithm, rec.Criterion, rec.Severity)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return records, nil
}

// MixedResult is one Phase-2 outcome: the measured metrics of a criteria
// combination next to the additive prediction derived from Phase-1 curves,
// quantifying interaction effects.
type MixedResult struct {
	Algorithm      string         `json:"algorithm"`
	Criteria       []dq.Criterion `json:"criteria"`
	Severity       float64        `json:"severity"`
	Actual         eval.Metrics   `json:"actual"`
	PredictedKappa float64        `json:"predictedKappa"`
}

// Interaction returns actual kappa minus predicted kappa: negative values
// mean the combined defects hurt more than the sum of their parts
// (super-additive degradation, the shape the paper's Phase 2 exists to
// expose).
func (m MixedResult) Interaction() float64 {
	return m.Actual.Kappa - m.PredictedKappa
}

// p2Task is one addressable unit of the Phase-2 grid: an algorithm
// evaluated on one mixed-criteria combination. Its position in p2Tasks is
// the record's canonical index.
type p2Task struct {
	algorithm string
	combo     []dq.Criterion
}

// p2Tasks enumerates the Phase-2 grid in canonical (algorithm-major, combo
// order) sequence.
func p2Tasks(cfg Config, combos [][]dq.Criterion) []p2Task {
	tasks := make([]p2Task, 0, len(cfg.Algorithms)*len(combos))
	for _, alg := range cfg.AlgorithmNames() {
		for _, combo := range combos {
			tasks = append(tasks, p2Task{algorithm: alg, combo: combo})
		}
	}
	return tasks
}

// runP2Task executes one Phase-2 grid cell: inject the combination, mine,
// and compare against the additive prediction read from base. Like
// runP1Task, the record depends only on the task's coordinates; only the
// MixedResult's PredictedKappa depends on base, so shard runs (which lack
// the full Phase-1 snapshot) pass a nil base — the record is byte-identical
// and the profile measurement that only feeds the prediction is skipped.
func runP2Task(cfg Config, ds *mining.Dataset, datasetName string, base *kb.Snapshot,
	severity float64, tk p2Task, arena *mining.Arena) (MixedResult, kb.Record, error) {
	comboName := comboString(tk.combo)
	specs := make([]inject.Spec, len(tk.combo))
	for j, c := range tk.combo {
		specs[j] = inject.Spec{Criterion: c, Severity: severity, Mechanism: cfg.Mechanism}
	}
	seed := taskSeed(cfg.Seed, "mix", comboName, fmt.Sprintf("%.3f", severity))
	corrupted, err := inject.Apply(ds.T, ds.ClassCol, specs, seed)
	if err != nil {
		return MixedResult{}, kb.Record{}, fmt.Errorf("experiment: injecting %s: %w", comboName, err)
	}
	evalDS, err := mining.NewDataset(corrupted, ds.ClassCol)
	if err != nil {
		return MixedResult{}, kb.Record{}, err
	}
	cvSeed := taskSeed(cfg.Seed, "mixcv", tk.algorithm, comboName, fmt.Sprintf("%.3f", severity))
	m, err := eval.CrossValidateWith(cfg.Algorithms[tk.algorithm], evalDS, cfg.Folds, cvSeed, arena)
	if err != nil {
		return MixedResult{}, kb.Record{}, fmt.Errorf("experiment: %s on %s: %w", tk.algorithm, comboName, err)
	}
	res := MixedResult{
		Algorithm: tk.algorithm,
		Criteria:  tk.combo,
		Severity:  severity,
		Actual:    m,
	}
	if base != nil {
		// Predictions use the measured profile of the mixed data — exactly
		// the coordinates the advisor sees in production.
		severities := dq.Measure(corrupted, dq.MeasureOptions{ClassColumn: ds.ClassCol}).Severities()
		res.PredictedKappa = base.PredictKappa(tk.algorithm, severities)
	}
	rec := kb.Record{
		Algorithm: tk.algorithm,
		Criterion: comboName,
		Severity:  severity,
		Dataset:   datasetName,
		Mixed:     true,
		Folds:     cfg.Folds,
		Seed:      cvSeed,
		Metrics:   m,
	}
	return res, rec, nil
}

// Phase2 runs mixed-criteria combinations at a single severity per
// criterion and compares against additive predictions read from a
// Phase-1 knowledge-base snapshot. It returns the mixed results and the
// kb records (Criterion "a+b", Mixed=true) to be added to the knowledge
// base. Cancellation follows the same cell-boundary rule as Phase1.
func Phase2(ctx context.Context, cfg Config, ds *mining.Dataset, datasetName string, base *kb.Snapshot,
	combos [][]dq.Criterion, severity float64) ([]MixedResult, []kb.Record, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.applyDefaults()
	tasks := p2Tasks(cfg, combos)
	prog := newProgress(cfg.Progress, 2, len(tasks), datasetName)
	results := make([]MixedResult, len(tasks))
	records := make([]kb.Record, len(tasks))
	arenas := workerArenas(cfg.Workers)
	err := runGrid(ctx, cfg.Workers, len(tasks), func(i, w int) error {
		res, rec, err := runP2Task(cfg, ds, datasetName, base, severity, tasks[i], arenas[w])
		if err != nil {
			return err
		}
		results[i] = res
		records[i] = rec
		prog.record(rec.Algorithm, rec.Criterion, rec.Severity)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return results, records, nil
}

// comboString renders "completeness+label-noise".
func comboString(combo []dq.Criterion) string {
	s := ""
	for i, c := range combo {
		if i > 0 {
			s += "+"
		}
		s += c.String()
	}
	return s
}

// DefaultCombos returns the canonical Phase-2 pairs: every pair of
// distinct criteria from the given list.
func DefaultCombos(criteria []dq.Criterion) [][]dq.Criterion {
	var out [][]dq.Criterion
	for i := 0; i < len(criteria); i++ {
		for j := i + 1; j < len(criteria); j++ {
			out = append(out, []dq.Criterion{criteria[i], criteria[j]})
		}
	}
	return out
}
