// Package experiment implements §3.1 of the paper — the experiment stage
// of Figure 2 that generates the DQ4DM knowledge base. Phase 1 applies
// algorithms "in the presence of data quality criteria" injected one at a
// time over a severity sweep; Phase 2 applies "a mixed set of data quality
// criteria"; the results populate kb.KnowledgeBase.
//
// Runs fan out over a bounded worker pool; every task derives its own
// deterministic seed, so results are identical regardless of parallelism.
// Both phases honour context cancellation between grid cells — an
// in-flight cross-validation finishes, but no new cell starts once the
// context is done — and can stream per-record completion through
// Config.Progress for observability.
package experiment

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
)

// Event is one progress notification: a grid record finished. Events are
// emitted serially (never two at once), so sinks need no locking of their
// own, but they run on the worker's goroutine — keep them fast.
type Event struct {
	// Phase is 1 for the simple-criterion sweep, 2 for mixed combinations.
	Phase int
	// Algorithm, Criterion and Severity locate the finished record;
	// Criterion is "clean" for baselines and "a+b" for Phase-2 combos.
	Algorithm string
	Criterion string
	Severity  float64
	// Completed counts records finished in this phase so far (including
	// this one); Total is the phase's full grid size.
	Completed int
	Total     int
}

// Config parameterizes a run.
type Config struct {
	// Algorithms maps registry names to factories; nil means the standard
	// suite (mining.StandardSuite).
	Algorithms map[string]mining.Factory
	// Criteria lists the criteria to sweep; nil means dq.AllCriteria().
	Criteria []dq.Criterion
	// Severities is the sweep grid; nil means {0, 0.1, 0.2, 0.3, 0.4, 0.5}.
	// Severity 0 rows become the clean baselines.
	Severities []float64
	// Mechanism applies to the Completeness criterion (default MCAR).
	Mechanism inject.Mechanism
	// Folds is the cross-validation fold count (default 5).
	Folds int
	// Seed is the base seed; per-task seeds derive from it.
	Seed int64
	// Workers bounds parallelism (default runtime.GOMAXPROCS(0)).
	Workers int
	// Progress, when non-nil, receives one Event per completed record.
	// Calls are serialized across workers.
	Progress func(Event)
}

func (c *Config) applyDefaults() {
	if c.Algorithms == nil {
		c.Algorithms = mining.StandardSuite(c.Seed)
	}
	if c.Criteria == nil {
		c.Criteria = dq.AllCriteria()
	}
	if c.Severities == nil {
		c.Severities = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.Folds < 2 {
		c.Folds = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// AlgorithmNames returns the configured algorithm names, sorted.
func (c *Config) AlgorithmNames() []string {
	out := make([]string, 0, len(c.Algorithms))
	for n := range c.Algorithms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// progress serializes Event delivery from concurrent workers and owns the
// per-phase Completed counter.
type progress struct {
	mu    sync.Mutex
	sink  func(Event)
	phase int
	total int
	done  int
}

func newProgress(sink func(Event), phase, total int) *progress {
	return &progress{sink: sink, phase: phase, total: total}
}

func (p *progress) record(algorithm, criterion string, severity float64) {
	if p == nil || p.sink == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.sink(Event{
		Phase:     p.phase,
		Algorithm: algorithm,
		Criterion: criterion,
		Severity:  severity,
		Completed: p.done,
		Total:     p.total,
	})
}

// taskSeed derives a stable per-task seed from the run seed and the task
// coordinates, so adding workers or reordering tasks cannot change results.
func taskSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", base)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// cell is one corrupted dataset shared by every algorithm — the paper's
// method evaluates all techniques on the same prepared test datasets
// (§3.1 step 2), which also lets the record carry the dq-measured severity
// of the injected defect.
//
// Cells are the only materialization point of the grid: inject.Apply
// copy-on-writes exactly the columns a defect touches, the clean cell is
// the caller's dataset itself, and every split below a cell (fold train/
// test sets, bootstrap resamples) is a zero-copy view into it. The cell's
// table is never mutated after construction, which is what makes sharing
// it across the worker pool safe.
type cell struct {
	criterion dq.Criterion
	severity  float64 // injected; 0 marks the clean cell
	ds        *mining.Dataset
	measured  float64            // measured severity of the injected criterion
	measures  map[string]float64 // clean cell: measured severity per criterion
}

// prepareCells builds the clean cell plus one corrupted cell per
// (criterion × non-zero severity), honouring ctx between cells.
func prepareCells(ctx context.Context, cfg Config, ds *mining.Dataset) ([]cell, error) {
	cleanProfile := dq.Measure(ds.Table(), dq.MeasureOptions{ClassColumn: ds.ClassCol})
	cleanMeasures := map[string]float64{}
	for _, c := range dq.AllCriteria() {
		cleanMeasures[c.String()] = cleanProfile.Severity(c)
	}
	cells := []cell{{severity: 0, ds: ds, measures: cleanMeasures}}
	for _, crit := range cfg.Criteria {
		for _, sev := range cfg.Severities {
			if sev == 0 {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			seed := taskSeed(cfg.Seed, "inject", crit.String(), fmt.Sprintf("%.3f", sev))
			corrupted, err := inject.Apply(ds.T, ds.ClassCol,
				[]inject.Spec{{Criterion: crit, Severity: sev, Mechanism: cfg.Mechanism}}, seed)
			if err != nil {
				return nil, fmt.Errorf("experiment: injecting %s@%.2f: %w", crit, sev, err)
			}
			evalDS, err := mining.NewDataset(corrupted, ds.ClassCol)
			if err != nil {
				return nil, err
			}
			profile := dq.Measure(corrupted, dq.MeasureOptions{ClassColumn: ds.ClassCol})
			cells = append(cells, cell{
				criterion: crit,
				severity:  sev,
				ds:        evalDS,
				measured:  profile.Severity(crit),
			})
		}
	}
	return cells, nil
}

// Phase1 runs the simple-criterion grid on a clean dataset and returns one
// kb.Record per (algorithm × criterion × severity) cell. The severity-0
// cell is evaluated once per algorithm and recorded with Criterion
// "clean"; its record carries the clean data's measured severity for every
// criterion (the advisor's curve anchors).
//
// Cancellation is honoured between grid cells: when ctx is done, running
// cells finish, no new cell starts, and Phase1 returns ctx.Err().
func Phase1(ctx context.Context, cfg Config, ds *mining.Dataset, datasetName string) ([]kb.Record, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.applyDefaults()
	cells, err := prepareCells(ctx, cfg, ds)
	if err != nil {
		return nil, err
	}

	type task struct {
		algorithm string
		cell      cell
	}
	var tasks []task
	for _, alg := range cfg.AlgorithmNames() {
		for _, cl := range cells {
			tasks = append(tasks, task{alg, cl})
		}
	}

	prog := newProgress(cfg.Progress, 1, len(tasks))
	records := make([]kb.Record, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, tk := range tasks {
		wg.Add(1)
		go func(i int, tk task) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}

			rec := kb.Record{
				Algorithm:        tk.algorithm,
				Criterion:        "clean",
				Severity:         tk.cell.severity,
				MeasuredSeverity: tk.cell.measured,
				MeasuredAll:      tk.cell.measures,
				Dataset:          datasetName,
				Folds:            cfg.Folds,
			}
			if tk.cell.severity > 0 {
				rec.Criterion = tk.cell.criterion.String()
				if tk.cell.criterion == dq.Completeness {
					rec.Mechanism = cfg.Mechanism.String()
				}
			}
			cvSeed := taskSeed(cfg.Seed, "cv", tk.algorithm, rec.Criterion, fmt.Sprintf("%.3f", rec.Severity))
			rec.Seed = cvSeed
			m, err := eval.CrossValidate(cfg.Algorithms[tk.algorithm], tk.cell.ds, cfg.Folds, cvSeed)
			if err != nil {
				errs[i] = fmt.Errorf("experiment: %s on %s@%.2f: %w", tk.algorithm, rec.Criterion, rec.Severity, err)
				return
			}
			rec.Metrics = m
			records[i] = rec
			prog.record(rec.Algorithm, rec.Criterion, rec.Severity)
		}(i, tk)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return records, nil
}

// MixedResult is one Phase-2 outcome: the measured metrics of a criteria
// combination next to the additive prediction derived from Phase-1 curves,
// quantifying interaction effects.
type MixedResult struct {
	Algorithm      string         `json:"algorithm"`
	Criteria       []dq.Criterion `json:"criteria"`
	Severity       float64        `json:"severity"`
	Actual         eval.Metrics   `json:"actual"`
	PredictedKappa float64        `json:"predictedKappa"`
}

// Interaction returns actual kappa minus predicted kappa: negative values
// mean the combined defects hurt more than the sum of their parts
// (super-additive degradation, the shape the paper's Phase 2 exists to
// expose).
func (m MixedResult) Interaction() float64 {
	return m.Actual.Kappa - m.PredictedKappa
}

// Phase2 runs mixed-criteria combinations at a single severity per
// criterion and compares against additive predictions read from a
// Phase-1 knowledge-base snapshot. It returns the mixed results and the
// kb records (Criterion "a+b", Mixed=true) to be added to the knowledge
// base. Cancellation follows the same cell-boundary rule as Phase1.
func Phase2(ctx context.Context, cfg Config, ds *mining.Dataset, datasetName string, base *kb.Snapshot,
	combos [][]dq.Criterion, severity float64) ([]MixedResult, []kb.Record, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.applyDefaults()

	type task struct {
		algorithm string
		combo     []dq.Criterion
	}
	var tasks []task
	for _, alg := range cfg.AlgorithmNames() {
		for _, combo := range combos {
			tasks = append(tasks, task{alg, combo})
		}
	}
	prog := newProgress(cfg.Progress, 2, len(tasks))
	results := make([]MixedResult, len(tasks))
	records := make([]kb.Record, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, tk := range tasks {
		wg.Add(1)
		go func(i int, tk task) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}

			comboName := comboString(tk.combo)
			specs := make([]inject.Spec, len(tk.combo))
			for j, c := range tk.combo {
				specs[j] = inject.Spec{Criterion: c, Severity: severity, Mechanism: cfg.Mechanism}
			}
			seed := taskSeed(cfg.Seed, "mix", comboName, fmt.Sprintf("%.3f", severity))
			corrupted, err := inject.Apply(ds.T, ds.ClassCol, specs, seed)
			if err != nil {
				errs[i] = fmt.Errorf("experiment: injecting %s: %w", comboName, err)
				return
			}
			evalDS, err := mining.NewDataset(corrupted, ds.ClassCol)
			if err != nil {
				errs[i] = err
				return
			}
			// Predictions use the measured profile of the mixed data —
			// exactly the coordinates the advisor sees in production.
			severities := dq.Measure(corrupted, dq.MeasureOptions{ClassColumn: ds.ClassCol}).Severities()
			cvSeed := taskSeed(cfg.Seed, "mixcv", tk.algorithm, comboName, fmt.Sprintf("%.3f", severity))
			m, err := eval.CrossValidate(cfg.Algorithms[tk.algorithm], evalDS, cfg.Folds, cvSeed)
			if err != nil {
				errs[i] = fmt.Errorf("experiment: %s on %s: %w", tk.algorithm, comboName, err)
				return
			}
			results[i] = MixedResult{
				Algorithm:      tk.algorithm,
				Criteria:       tk.combo,
				Severity:       severity,
				Actual:         m,
				PredictedKappa: base.PredictKappa(tk.algorithm, severities),
			}
			records[i] = kb.Record{
				Algorithm: tk.algorithm,
				Criterion: comboName,
				Severity:  severity,
				Dataset:   datasetName,
				Mixed:     true,
				Folds:     cfg.Folds,
				Seed:      cvSeed,
				Metrics:   m,
			}
			prog.record(tk.algorithm, comboName, severity)
		}(i, tk)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results, records, nil
}

// comboString renders "completeness+label-noise".
func comboString(combo []dq.Criterion) string {
	s := ""
	for i, c := range combo {
		if i > 0 {
			s += "+"
		}
		s += c.String()
	}
	return s
}

// DefaultCombos returns the canonical Phase-2 pairs: every pair of
// distinct criteria from the given list.
func DefaultCombos(criteria []dq.Criterion) [][]dq.Criterion {
	var out [][]dq.Criterion
	for i := 0; i < len(criteria); i++ {
		for j := i + 1; j < len(criteria); j++ {
			out = append(out, []dq.Criterion{criteria[i], criteria[j]})
		}
	}
	return out
}
