package experiment

import (
	"context"
	"errors"
	"testing"

	"openbi/internal/eval"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/oberr"
	"openbi/internal/synth"
)

// constClassifier predicts one fixed class regardless of input, which
// makes its cross-validated kappa exactly 0 on any dataset: observed
// agreement equals chance agreement when the prediction marginal is a
// point mass. Two const classifiers therefore tie exactly — the scenario
// the advisor's Top1/Top2 tie-breaking rules exist for.
type constClassifier struct{}

func (constClassifier) Name() string                     { return "const" }
func (constClassifier) Fit(*mining.Dataset) error        { return nil }
func (constClassifier) Predict(*mining.Dataset, int) int { return 0 }

func constFactory() mining.Classifier { return constClassifier{} }

// tiedValidateCfg builds a two-algorithm suite whose empirical kappas tie
// at 0 on every scenario.
func tiedValidateCfg(seed int64) Config {
	return Config{
		Seed:  seed,
		Folds: 3,
		Algorithms: map[string]mining.Factory{
			"a-const": constFactory,
			"b-const": constFactory,
		},
	}
}

// baselineSnapshot builds a snapshot whose advice is fully determined by
// clean baselines: one severity-0 record per algorithm, no curves, so
// PredictKappa(alg) == the given baseline for any severity vector.
func baselineSnapshot(baselines map[string]float64) *kb.Snapshot {
	base := kb.New()
	for alg, kappa := range baselines {
		base.Add(kb.Record{
			Algorithm: alg,
			Criterion: "clean",
			Severity:  0,
			Dataset:   "unit",
			Folds:     3,
			Metrics:   eval.Metrics{Kappa: kappa},
		})
	}
	return base.Snapshot()
}

func validateDataset(t *testing.T) *mining.Dataset {
	t.Helper()
	ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: 80, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestValidateEdgeCases(t *testing.T) {
	ds := validateDataset(t)
	for _, tc := range []struct {
		name      string
		snapshot  *kb.Snapshot
		trials    int
		wantErr   error
		wantTrial int
		// expectations over the result (skipped when wantErr != nil)
		wantTop1    int
		wantTop2    int
		wantStatic  string
		wantEmpiric string
	}{
		{
			name:     "empty KB fails with ErrEmptyKB",
			snapshot: kb.New().Snapshot(),
			trials:   3,
			wantErr:  oberr.ErrEmptyKB,
		},
		{
			name:      "zero trials defaults to 10",
			snapshot:  baselineSnapshot(map[string]float64{"a-const": 0.8, "b-const": 0.6}),
			trials:    0,
			wantTrial: 10,
			wantTop1:  10, wantTop2: 10,
			wantStatic: "a-const", wantEmpiric: "a-const",
		},
		{
			name:      "negative trials defaults to 10",
			snapshot:  baselineSnapshot(map[string]float64{"a-const": 0.8, "b-const": 0.6}),
			trials:    -4,
			wantTrial: 10,
			wantTop1:  10, wantTop2: 10,
			wantStatic: "a-const", wantEmpiric: "a-const",
		},
		{
			// Every empirical kappa ties at 0, so the winner is decided by
			// the name tie-break (stable sort, ascending name). Advice
			// prefers a-const (higher baseline) — a Top-1 hit on every
			// trial, with zero regret.
			name:      "top1 on exact kappa tie via name tie-break",
			snapshot:  baselineSnapshot(map[string]float64{"a-const": 0.8, "b-const": 0.6}),
			trials:    4,
			wantTrial: 4,
			wantTop1:  4, wantTop2: 4,
			wantStatic: "a-const", wantEmpiric: "a-const",
		},
		{
			// Advice prefers b-const, but the tie-break crowns a-const
			// empirically: a Top-2 (not Top-1) hit on every trial, still
			// zero regret because the kappas are equal.
			name:      "top2 when advised ranks second on a tie",
			snapshot:  baselineSnapshot(map[string]float64{"a-const": 0.6, "b-const": 0.8}),
			trials:    4,
			wantTrial: 4,
			wantTop1:  0, wantTop2: 4,
			wantStatic: "a-const", wantEmpiric: "a-const",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Validate(context.Background(), tiedValidateCfg(42), ds, tc.snapshot, tc.trials)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Trials != tc.wantTrial || len(res.Detail) != tc.wantTrial {
				t.Fatalf("trials = %d (detail %d), want %d", res.Trials, len(res.Detail), tc.wantTrial)
			}
			if res.Top1Hits != tc.wantTop1 || res.Top2Hits != tc.wantTop2 {
				t.Errorf("top1 = %d top2 = %d, want %d / %d", res.Top1Hits, res.Top2Hits, tc.wantTop1, tc.wantTop2)
			}
			if res.MeanRegret != 0 || res.StaticRegret != 0 {
				t.Errorf("regret = %v static = %v, want 0 on exact ties", res.MeanRegret, res.StaticRegret)
			}
			if res.StaticPolicy != tc.wantStatic {
				t.Errorf("static policy = %q, want %q (name tie-break on equal means)", res.StaticPolicy, tc.wantStatic)
			}
			for i, d := range res.Detail {
				if d.Empirical != tc.wantEmpiric {
					t.Errorf("trial %d empirical = %q, want %q", i, d.Empirical, tc.wantEmpiric)
				}
				if d.Scenario == "" {
					t.Errorf("trial %d has an empty scenario label", i)
				}
				if d.Regret != 0 {
					t.Errorf("trial %d regret = %v, want 0 on an exact tie", i, d.Regret)
				}
			}
			// Rate helpers must agree with the raw counts.
			if got, want := res.Top1Rate(), float64(tc.wantTop1)/float64(tc.wantTrial); got != want {
				t.Errorf("Top1Rate = %v, want %v", got, want)
			}
			if got, want := res.Top2Rate(), float64(tc.wantTop2)/float64(tc.wantTrial); got != want {
				t.Errorf("Top2Rate = %v, want %v", got, want)
			}
		})
	}
}

// TestValidationRatesOnZeroValue: the rate helpers must not divide by zero
// on an empty result.
func TestValidationRatesOnZeroValue(t *testing.T) {
	var res ValidationResult
	if res.Top1Rate() != 0 || res.Top2Rate() != 0 {
		t.Fatalf("zero-value rates = %v / %v, want 0 / 0", res.Top1Rate(), res.Top2Rate())
	}
}
