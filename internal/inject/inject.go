// Package inject implements §3.1 step 2 of the paper: starting "from this
// initial dataset we will introduce some data quality problems in a
// controlled manner". Each operator corrupts a clean dataset along exactly
// one data-quality criterion at a chosen severity in [0,1], deterministically
// for a given seed, so that experiment outcomes are attributable to the
// injected defect and reproducible.
//
// Operators never mutate their input; they return a corrupted copy. The
// copy is taken lazily (copy-on-write): Apply starts from a shallow clone
// sharing every column with the input, and an operator clones exactly the
// columns it writes. Criteria that only append rows or columns (duplicates,
// correlation, dimensionality) or only touch the class column (label noise)
// therefore no longer pay for a full-table deep copy.
package inject

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"openbi/internal/dq"
	"openbi/internal/stats"
	"openbi/internal/table"
)

// Mechanism selects the missingness mechanism for the Completeness
// criterion (Rubin's taxonomy; MCAR is the default).
type Mechanism int

const (
	// MCAR deletes cells uniformly at random.
	MCAR Mechanism = iota
	// MAR deletes cells with probability driven by the value of another
	// (fully observed) attribute.
	MAR
	// MNAR deletes cells with probability driven by the cell's own value
	// (large values vanish), the hardest case for imputation.
	MNAR
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case MCAR:
		return "MCAR"
	case MAR:
		return "MAR"
	case MNAR:
		return "MNAR"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Spec describes one controlled defect to inject.
type Spec struct {
	Criterion dq.Criterion
	// Severity is the defect intensity in [0,1]; 0 is a no-op.
	Severity float64
	// Mechanism applies to Completeness only.
	Mechanism Mechanism
}

// String renders "criterion@severity".
func (s Spec) String() string {
	if s.Criterion == dq.Completeness && s.Mechanism != MCAR {
		return fmt.Sprintf("%s[%s]@%.2f", s.Criterion, s.Mechanism, s.Severity)
	}
	return fmt.Sprintf("%s@%.2f", s.Criterion, s.Severity)
}

// Apply injects every spec in order into a copy of t (a concrete table or
// a zero-copy view). classCol is the class column index (-1 when absent);
// class cells are never deleted or noised except by the LabelNoise
// operator, so each defect stays confined to its criterion. The returned
// table owns every column it has written; untouched columns may share
// storage with the input, so the input must not be mutated afterwards (the
// experiment pipeline never mutates its reference datasets).
func Apply(t table.Access, classCol int, specs []Spec, seed int64) (*table.Table, error) {
	out := table.CopyOnWrite(t)
	rng := stats.NewRand(seed)
	for _, sp := range specs {
		if sp.Severity < 0 || sp.Severity > 1 {
			return nil, fmt.Errorf("inject: severity %.3f out of [0,1] for %s", sp.Severity, sp.Criterion)
		}
		if sp.Severity == 0 {
			continue
		}
		var err error
		switch sp.Criterion {
		case dq.Completeness:
			err = injectMissing(out, classCol, sp.Severity, sp.Mechanism, rng)
		case dq.Duplicates:
			out = injectDuplicates(out, sp.Severity, rng)
		case dq.Correlation:
			err = injectCorrelated(out, classCol, sp.Severity, rng)
		case dq.Imbalance:
			out, err = injectImbalance(out, classCol, sp.Severity, rng)
		case dq.LabelNoise:
			err = injectLabelNoise(out, classCol, sp.Severity, rng)
		case dq.AttributeNoise:
			injectAttributeNoise(out, classCol, sp.Severity, rng)
		case dq.Dimensionality:
			injectIrrelevant(out, sp.Severity, rng)
		default:
			err = fmt.Errorf("inject: unsupported criterion %s", sp.Criterion)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MustApply is Apply for construction code with known-valid specs.
func MustApply(t table.Access, classCol int, specs []Spec, seed int64) *table.Table {
	out, err := Apply(t, classCol, specs, seed)
	if err != nil {
		panic(err)
	}
	return out
}

// injectMissing deletes severity fraction of attribute cells under the
// given mechanism.
func injectMissing(t *table.Table, classCol int, severity float64, mech Mechanism, rng *rand.Rand) error {
	rows := t.NumRows()
	attrs := attrColumns(t, classCol)
	if rows == 0 || len(attrs) == 0 {
		return nil
	}
	switch mech {
	case MCAR:
		for _, j := range attrs {
			for r := 0; r < rows; r++ {
				if rng.Float64() < severity {
					t.SetMissing(r, j)
				}
			}
		}
	case MAR:
		// Missingness of column j is driven by the rank of the cell in the
		// previous attribute column: rows in the top 2·severity quantile of
		// the driver lose their cell with probability one-half each — the
		// expected deleted mass is again ≈ severity.
		for idx, j := range attrs {
			driver := attrs[(idx+len(attrs)-1)%len(attrs)]
			order := rankOrder(t, driver)
			cut := int(2 * severity * float64(rows))
			if cut > rows {
				cut = rows
			}
			for k := 0; k < cut; k++ {
				if rng.Float64() < 0.5 {
					t.SetMissing(order[k], j)
				}
			}
		}
	case MNAR:
		// Each column loses its own largest-valued cells.
		for _, j := range attrs {
			order := rankOrder(t, j)
			cut := int(severity * float64(rows))
			for k := 0; k < cut; k++ {
				t.SetMissing(order[k], j)
			}
		}
	default:
		return fmt.Errorf("inject: unknown mechanism %v", mech)
	}
	return nil
}

// rankOrder returns row indices of column j sorted by descending cell
// magnitude (numeric) or code (nominal); missing cells sort last. Ties are
// broken by row index for determinism.
func rankOrder(t *table.Table, j int) []int {
	rows := t.NumRows()
	c := t.Column(j)
	order := make([]int, rows)
	for i := range order {
		order[i] = i
	}
	key := func(r int) float64 {
		if c.IsMissing(r) {
			return math.Inf(-1)
		}
		if c.Kind == table.Numeric {
			return c.Nums[r]
		}
		return float64(c.Cats[r])
	}
	sort.SliceStable(order, func(a, b int) bool { return key(order[a]) > key(order[b]) })
	return order
}

// injectDuplicates appends copied rows until the duplicate ratio of the
// result is approximately severity. (Appending d = n·s/(1−s) copies of
// existing rows makes d/(n+d) = s.)
func injectDuplicates(t *table.Table, severity float64, rng *rand.Rand) *table.Table {
	n := t.NumRows()
	if n == 0 || severity >= 1 {
		return t
	}
	d := int(math.Round(severity / (1 - severity) * float64(n)))
	if d == 0 {
		return t
	}
	rows := make([]int, 0, n+d)
	for i := 0; i < n; i++ {
		rows = append(rows, i)
	}
	for i := 0; i < d; i++ {
		rows = append(rows, rng.Intn(n))
	}
	return t.SelectRows(rows)
}

// injectCorrelated adds near-copies of existing numeric attributes so that
// the attribute set becomes redundant — the paper's own example of a
// quality defect that yields "correct but useless" patterns (§3.1). The
// number of redundant columns is ceil(severity · #numeric attributes) and
// each copy correlates ≈ 0.95+ with its source.
func injectCorrelated(t *table.Table, classCol int, severity float64, rng *rand.Rand) error {
	var numeric []int
	for _, j := range attrColumns(t, classCol) {
		if t.Column(j).Kind == table.Numeric {
			numeric = append(numeric, j)
		}
	}
	if len(numeric) == 0 {
		return fmt.Errorf("inject: correlation criterion needs at least one numeric attribute")
	}
	k := int(math.Ceil(severity * float64(len(numeric))))
	for i := 0; i < k; i++ {
		src := t.Column(numeric[i%len(numeric)])
		sd := stats.StdDev(src.Nums)
		if stats.IsMissing(sd) || sd == 0 {
			sd = 1
		}
		col := table.NewNumericColumn(fmt.Sprintf("%s_corr%d", src.Name, i+1))
		noise := 0.2 * sd // yields r ≈ 0.98 against the source
		for r := 0; r < t.NumRows(); r++ {
			if src.IsMissing(r) {
				col.AppendMissing()
				continue
			}
			col.AppendFloat(src.Nums[r] + stats.Gaussian(rng, 0, noise))
		}
		if err := t.AddColumn(col); err != nil {
			return err
		}
	}
	return nil
}

// injectImbalance subsamples minority classes so that every non-majority
// class keeps only (1−severity) of its proportional share; severity 1
// collapses the dataset to near single-class.
func injectImbalance(t *table.Table, classCol int, severity float64, rng *rand.Rand) (*table.Table, error) {
	if classCol < 0 {
		return nil, fmt.Errorf("inject: imbalance criterion requires a class column")
	}
	cls := t.Column(classCol)
	if cls.Kind != table.Nominal {
		return nil, fmt.Errorf("inject: class column %q is not nominal", cls.Name)
	}
	counts := cls.Counts()
	maj := 0
	for code, c := range counts {
		if c > counts[maj] {
			maj = code
		}
	}
	keepFrac := 1 - severity
	var keep []int
	for r := 0; r < t.NumRows(); r++ {
		code := cls.Cats[r]
		if code == maj || code == table.MissingCat {
			keep = append(keep, r)
			continue
		}
		if rng.Float64() < keepFrac {
			keep = append(keep, r)
		}
	}
	// Guarantee at least one instance of every originally present class so
	// the task stays a classification problem.
	present := make(map[int]bool)
	for _, r := range keep {
		present[cls.Cats[r]] = true
	}
	for r := 0; r < t.NumRows(); r++ {
		code := cls.Cats[r]
		if code != table.MissingCat && !present[code] {
			keep = append(keep, r)
			present[code] = true
		}
	}
	sort.Ints(keep)
	return t.SelectRows(keep), nil
}

// injectLabelNoise flips severity fraction of class labels to a uniformly
// chosen different class.
func injectLabelNoise(t *table.Table, classCol int, severity float64, rng *rand.Rand) error {
	if classCol < 0 {
		return fmt.Errorf("inject: label-noise criterion requires a class column")
	}
	cls := t.Column(classCol)
	if cls.Kind != table.Nominal {
		return fmt.Errorf("inject: class column %q is not nominal", cls.Name)
	}
	k := cls.NumLevels()
	if k < 2 {
		return fmt.Errorf("inject: label noise needs >= 2 classes, have %d", k)
	}
	cls = t.OwnedColumn(classCol) // about to flip labels in place
	for r := 0; r < t.NumRows(); r++ {
		if cls.Cats[r] == table.MissingCat || rng.Float64() >= severity {
			continue
		}
		nw := rng.Intn(k - 1)
		if nw >= cls.Cats[r] {
			nw++
		}
		cls.Cats[r] = nw
	}
	return nil
}

// injectAttributeNoise corrupts severity fraction of attribute cells:
// numeric cells gain Gaussian noise at 2 column standard deviations,
// nominal cells switch to a uniformly chosen other level.
func injectAttributeNoise(t *table.Table, classCol int, severity float64, rng *rand.Rand) {
	for _, j := range attrColumns(t, classCol) {
		c := t.Column(j)
		if c.Kind == table.Numeric {
			sd := stats.StdDev(c.Nums)
			if stats.IsMissing(sd) || sd == 0 {
				sd = 1
			}
			c = t.OwnedColumn(j) // about to noise cells in place
			for r := 0; r < t.NumRows(); r++ {
				if c.IsMissing(r) || rng.Float64() >= severity {
					continue
				}
				c.Nums[r] += stats.Gaussian(rng, 0, 2*sd)
			}
			continue
		}
		k := c.NumLevels()
		if k < 2 {
			continue
		}
		c = t.OwnedColumn(j)
		for r := 0; r < t.NumRows(); r++ {
			if c.IsMissing(r) || rng.Float64() >= severity {
				continue
			}
			nw := rng.Intn(k - 1)
			if nw >= c.Cats[r] {
				nw++
			}
			c.Cats[r] = nw
		}
	}
}

// injectIrrelevant inflates dimensionality by appending
// round(severity · 3 · #attributes) pure-noise columns (two thirds numeric
// Gaussians, one third 4-level nominals), mimicking the attribute blow-up
// of joining many LOD sources (§1's "high dimensionality").
func injectIrrelevant(t *table.Table, severity float64, rng *rand.Rand) {
	base := t.NumCols()
	k := int(math.Round(severity * 3 * float64(base)))
	for i := 0; i < k; i++ {
		if i%3 == 2 {
			col := table.NewNominalColumn(fmt.Sprintf("noise_cat%d", i+1), "a", "b", "c", "d")
			for r := 0; r < t.NumRows(); r++ {
				col.AppendCode(rng.Intn(4))
			}
			t.MustAddColumn(col)
			continue
		}
		col := table.NewNumericColumn(fmt.Sprintf("noise_num%d", i+1))
		for r := 0; r < t.NumRows(); r++ {
			col.AppendFloat(rng.NormFloat64())
		}
		t.MustAddColumn(col)
	}
}

// attrColumns lists every column index except the class column.
func attrColumns(t *table.Table, classCol int) []int {
	out := make([]int, 0, t.NumCols())
	for j := 0; j < t.NumCols(); j++ {
		if j != classCol {
			out = append(out, j)
		}
	}
	return out
}
