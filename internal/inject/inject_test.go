package inject

import (
	"math"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/stats"
	"openbi/internal/synth"
	"openbi/internal/table"
)

// fixture returns a fresh clean dataset (300 rows, 6 numeric + 2 nominal
// attributes, binary class at the last column).
func fixture() (*table.Table, int) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 300, Seed: 11})
	return ds.Table(), ds.ClassCol
}

func measure(t *table.Table, classCol int) dq.Profile {
	return dq.Measure(t, dq.MeasureOptions{ClassColumn: classCol})
}

func TestApplyRejectsBadSeverity(t *testing.T) {
	tb, cc := fixture()
	if _, err := Apply(tb, cc, []Spec{{Criterion: dq.LabelNoise, Severity: 1.5}}, 1); err == nil {
		t.Fatal("severity > 1 should error")
	}
	if _, err := Apply(tb, cc, []Spec{{Criterion: dq.LabelNoise, Severity: -0.1}}, 1); err == nil {
		t.Fatal("negative severity should error")
	}
}

func TestApplyZeroSeverityIsNoop(t *testing.T) {
	tb, cc := fixture()
	out, err := Apply(tb, cc, []Spec{{Criterion: dq.Completeness, Severity: 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, out) {
		t.Fatal("zero severity should be identity")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	tb, cc := fixture()
	ref := tb.Clone()
	_, err := Apply(tb, cc, []Spec{
		{Criterion: dq.Completeness, Severity: 0.3},
		{Criterion: dq.LabelNoise, Severity: 0.3},
		{Criterion: dq.Dimensionality, Severity: 0.5},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, ref) {
		t.Fatal("Apply mutated its input")
	}
}

func TestApplyDeterministic(t *testing.T) {
	tb, cc := fixture()
	specs := []Spec{{Criterion: dq.AttributeNoise, Severity: 0.4}}
	a := MustApply(tb, cc, specs, 42)
	b := MustApply(tb, cc, specs, 42)
	if !table.Equal(a, b) {
		t.Fatal("same seed should give identical corruption")
	}
	c := MustApply(tb, cc, specs, 43)
	if table.Equal(a, c) {
		t.Fatal("different seed should differ")
	}
}

func TestMissingMCARRate(t *testing.T) {
	tb, cc := fixture()
	out := MustApply(tb, cc, []Spec{{Criterion: dq.Completeness, Severity: 0.3}}, 7)
	p := measure(out, cc)
	if math.Abs((1-p.Completeness)-0.3) > 0.05 {
		t.Fatalf("measured missing rate = %v, want ≈0.3", 1-p.Completeness)
	}
	// Class column untouched.
	if out.Column(cc).MissingCount() != 0 {
		t.Fatal("class labels must not be deleted")
	}
}

func TestMissingMNARDeletesLargest(t *testing.T) {
	tb, cc := fixture()
	out := MustApply(tb, cc, []Spec{{Criterion: dq.Completeness, Severity: 0.2, Mechanism: MNAR}}, 7)
	// In each numeric column the surviving max must be <= original max and
	// the deletion mass concentrated at the top.
	col := out.Column(0)
	orig := tb.Column(0)
	origMax, survMax := -math.MaxFloat64, -math.MaxFloat64
	for r := 0; r < tb.NumRows(); r++ {
		if orig.Nums[r] > origMax {
			origMax = orig.Nums[r]
		}
		if !col.IsMissing(r) && col.Nums[r] > survMax {
			survMax = col.Nums[r]
		}
	}
	if survMax >= origMax {
		t.Fatalf("MNAR should delete the top values (survMax=%v origMax=%v)", survMax, origMax)
	}
	if miss := col.MissingCount(); math.Abs(float64(miss)/300-0.2) > 0.02 {
		t.Fatalf("MNAR deletion rate = %v", float64(miss)/300)
	}
}

func TestMissingMARRate(t *testing.T) {
	tb, cc := fixture()
	out := MustApply(tb, cc, []Spec{{Criterion: dq.Completeness, Severity: 0.25, Mechanism: MAR}}, 7)
	p := measure(out, cc)
	if math.Abs((1-p.Completeness)-0.25) > 0.07 {
		t.Fatalf("MAR missing rate = %v, want ≈0.25", 1-p.Completeness)
	}
}

func TestDuplicatesRatio(t *testing.T) {
	tb, cc := fixture()
	out := MustApply(tb, cc, []Spec{{Criterion: dq.Duplicates, Severity: 0.3}}, 7)
	p := measure(out, cc)
	if math.Abs(p.DuplicateRatio-0.3) > 0.03 {
		t.Fatalf("duplicate ratio = %v, want ≈0.3", p.DuplicateRatio)
	}
	if out.NumRows() <= tb.NumRows() {
		t.Fatal("duplicates should add rows")
	}
}

func TestCorrelatedAddsRedundantColumns(t *testing.T) {
	tb, cc := fixture()
	out := MustApply(tb, cc, []Spec{{Criterion: dq.Correlation, Severity: 0.5}}, 7)
	added := out.NumCols() - tb.NumCols()
	if added != 3 { // ceil(0.5 * 6 numeric)
		t.Fatalf("added columns = %d, want 3", added)
	}
	// New column correlates strongly with its source.
	src := out.Column(0)
	cp := out.ColumnByName("num1_corr1")
	if cp == nil {
		t.Fatalf("expected num1_corr1, have %v", out.ColumnNames())
	}
	if r := stats.Pearson(src.Nums, cp.Nums); r < 0.9 {
		t.Fatalf("copy correlation = %v, want > 0.9", r)
	}
}

func TestCorrelatedRequiresNumeric(t *testing.T) {
	tb := table.New("nom-only")
	a := table.NewNominalColumn("a", "x", "y")
	cls := table.NewNominalColumn("class", "0", "1")
	for i := 0; i < 10; i++ {
		a.AppendCode(i % 2)
		cls.AppendCode(i % 2)
	}
	tb.MustAddColumn(a)
	tb.MustAddColumn(cls)
	if _, err := Apply(tb, 1, []Spec{{Criterion: dq.Correlation, Severity: 0.5}}, 1); err == nil {
		t.Fatal("correlation on numeric-less table should error")
	}
}

func TestImbalanceSkewsClasses(t *testing.T) {
	tb, cc := fixture()
	before := measure(tb, cc)
	out := MustApply(tb, cc, []Spec{{Criterion: dq.Imbalance, Severity: 0.8}}, 7)
	after := measure(out, cc)
	if after.ClassBalance >= before.ClassBalance-0.1 {
		t.Fatalf("balance before=%v after=%v; want clear drop", before.ClassBalance, after.ClassBalance)
	}
	// Every class still present.
	counts := out.Column(cc).Counts()
	for code, c := range counts {
		if c == 0 {
			t.Fatalf("class %d eliminated", code)
		}
	}
}

func TestImbalanceRequiresClass(t *testing.T) {
	tb, _ := fixture()
	if _, err := Apply(tb, -1, []Spec{{Criterion: dq.Imbalance, Severity: 0.5}}, 1); err == nil {
		t.Fatal("imbalance without class should error")
	}
}

func TestLabelNoiseFlipRate(t *testing.T) {
	tb, cc := fixture()
	out := MustApply(tb, cc, []Spec{{Criterion: dq.LabelNoise, Severity: 0.3}}, 7)
	flipped := 0
	for r := 0; r < tb.NumRows(); r++ {
		if tb.Cat(r, cc) != out.Cat(r, cc) {
			flipped++
		}
	}
	rate := float64(flipped) / float64(tb.NumRows())
	if math.Abs(rate-0.3) > 0.06 {
		t.Fatalf("flip rate = %v, want ≈0.3", rate)
	}
}

func TestLabelNoiseRequiresTwoClasses(t *testing.T) {
	tb := table.New("one-class")
	x := table.NewNumericColumn("x")
	cls := table.NewNominalColumn("class", "only")
	for i := 0; i < 5; i++ {
		x.AppendFloat(float64(i))
		cls.AppendCode(0)
	}
	tb.MustAddColumn(x)
	tb.MustAddColumn(cls)
	if _, err := Apply(tb, 1, []Spec{{Criterion: dq.LabelNoise, Severity: 0.5}}, 1); err == nil {
		t.Fatal("label noise on single class should error")
	}
}

func TestAttributeNoisePerturbsCells(t *testing.T) {
	tb, cc := fixture()
	out := MustApply(tb, cc, []Spec{{Criterion: dq.AttributeNoise, Severity: 0.4}}, 7)
	changedNum := 0
	col, origCol := out.Column(0), tb.Column(0)
	for r := 0; r < tb.NumRows(); r++ {
		if col.Nums[r] != origCol.Nums[r] {
			changedNum++
		}
	}
	rate := float64(changedNum) / float64(tb.NumRows())
	if math.Abs(rate-0.4) > 0.08 {
		t.Fatalf("numeric perturbation rate = %v, want ≈0.4", rate)
	}
	// Class labels untouched.
	for r := 0; r < tb.NumRows(); r++ {
		if tb.Cat(r, cc) != out.Cat(r, cc) {
			t.Fatal("attribute noise must not flip labels")
		}
	}
}

func TestDimensionalityAddsNoiseColumns(t *testing.T) {
	tb, cc := fixture()
	out := MustApply(tb, cc, []Spec{{Criterion: dq.Dimensionality, Severity: 0.5}}, 7)
	added := out.NumCols() - tb.NumCols()
	want := int(math.Round(0.5 * 3 * float64(tb.NumCols())))
	if added != want {
		t.Fatalf("added = %d, want %d", added, want)
	}
	_ = cc
}

func TestMixedSpecsCompose(t *testing.T) {
	tb, cc := fixture()
	out := MustApply(tb, cc, []Spec{
		{Criterion: dq.Completeness, Severity: 0.2},
		{Criterion: dq.LabelNoise, Severity: 0.2},
	}, 7)
	p := measure(out, cc)
	if p.Severity(dq.Completeness) < 0.1 {
		t.Fatalf("mixed: completeness severity = %v", p.Severity(dq.Completeness))
	}
	if p.NoiseEstimate < 0.15 {
		t.Fatalf("mixed: noise estimate = %v", p.NoiseEstimate)
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Criterion: dq.LabelNoise, Severity: 0.25}
	if s.String() != "label-noise@0.25" {
		t.Fatalf("String = %q", s.String())
	}
	m := Spec{Criterion: dq.Completeness, Severity: 0.1, Mechanism: MNAR}
	if m.String() != "completeness[MNAR]@0.10" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestMechanismString(t *testing.T) {
	if MCAR.String() != "MCAR" || MAR.String() != "MAR" || MNAR.String() != "MNAR" {
		t.Fatal("mechanism names wrong")
	}
}
