package hist

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundariesRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back into that bucket, and
	// upper bounds must be strictly increasing.
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket %d upper %d not > previous %d", i, up, prev)
		}
		prev = up
		if i == numBuckets-1 {
			continue // final bucket also absorbs clamped overflow
		}
		if got := bucketIndex(up); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", i, up, got)
		}
	}
	if got := bucketIndex(1 << 60); got != numBuckets-1 {
		t.Fatalf("overflow value landed in bucket %d, want last (%d)", got, numBuckets-1)
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("negative value landed in bucket %d, want 0", got)
	}
}

func TestQuantileWithinBucketError(t *testing.T) {
	// Against a known sample set, every quantile estimate must be >= the
	// true order statistic and within the ~3.1% bucket width above it.
	rng := rand.New(rand.NewSource(7))
	h := New()
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over 1µs..1s — spans many octaves.
		v := time.Duration(float64(time.Microsecond) * math.Pow(1e6, rng.Float64()))
		h.Observe(v)
		vals = append(vals, float64(v))
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(len(vals))+0.9999999) - 1
		truth := vals[rank]
		got := float64(h.Quantile(q))
		if got < truth {
			t.Errorf("q%.3f = %v below true order statistic %v", q, time.Duration(got), time.Duration(truth))
		}
		if got > truth*1.04 {
			t.Errorf("q%.3f = %v more than 4%% above truth %v", q, time.Duration(got), time.Duration(truth))
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestMergeAndMax(t *testing.T) {
	a, b := New(), New()
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	b.Observe(5 * time.Second)
	a.Merge(b)
	a.Merge(nil)
	if a.Count() != 101 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if a.Max() != 5*time.Second {
		t.Fatalf("merged Max = %v", a.Max())
	}
	if q := a.Quantile(1); q != 5*time.Second {
		t.Fatalf("q1 = %v, want exact max", q)
	}
	if m := a.Mean(); m < 40*time.Millisecond || m > 120*time.Millisecond {
		t.Fatalf("Mean = %v out of plausible range", m)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read as all zeros")
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}
