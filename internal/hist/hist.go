// Package hist is a fixed-memory, lock-free latency histogram in the HDR
// style: bucket boundaries grow geometrically (one run of linear
// sub-buckets per power of two), so a single ~10 KiB counter array covers
// nanoseconds to minutes with a bounded relative error instead of a
// per-sample log.
//
// It is the one latency-distribution representation shared by the serving
// side (per-endpoint histograms behind GET /v1/metrics) and the load side
// (openbi loadgen's per-worker recorders, merged into the run report) —
// both read the same quantile semantics, so a loadgen p99 and a server
// p99 are directly comparable.
//
// All mutators use atomics: Observe is safe from any number of goroutines
// and costs two atomic adds plus a bounded CAS loop for the max. Reads
// (Quantile, Count, Mean) take a point-in-time walk over the counters;
// under concurrent writes they are consistent enough for monitoring, not
// a linearizable snapshot.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits fixes the resolution: 1<<subBits linear sub-buckets per
	// power of two, so any recorded value lands in a bucket whose width
	// is at most 1/2^subBits of its magnitude (~3.1% relative error at
	// subBits = 5). Doubling the resolution doubles the array.
	subBits  = 5
	subCount = 1 << subBits

	// maxExp caps the tracked magnitude at 2^maxExp nanoseconds (~73
	// minutes); anything larger clamps into the final bucket. Latencies
	// past that are a liveness problem, not a distribution to resolve.
	maxExp = 42

	// numBuckets = the exact linear run [0, subCount) plus one run of
	// subCount sub-buckets per octave in [subBits, maxExp].
	numBuckets = subCount + (maxExp-subBits+1)*subCount
)

// Histogram records durations into log-bucketed counters. The zero value
// is NOT ready to use; call New (the struct is large enough that callers
// should share pointers anyway).
type Histogram struct {
	counts [numBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // nanoseconds, for Mean
	max    atomic.Int64 // nanoseconds
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketIndex maps a nanosecond value onto its bucket. Values below
// subCount are stored exactly; above, the top subBits+1 bits select
// (octave, sub-bucket).
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	k := bits.Len64(u) - 1 // 2^k <= u < 2^(k+1), k >= subBits
	if k > maxExp {
		return numBuckets - 1
	}
	sub := int(u>>(uint(k-subBits))) - subCount // top subBits bits after the leading 1
	return subCount + (k-subBits)*subCount + sub
}

// bucketUpper is the inclusive upper bound of bucket i — the value
// Quantile reports, so estimates err on the conservative (larger) side.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	j := i - subCount
	oct := j / subCount
	sub := j % subCount
	lower := int64(subCount+sub) << uint(oct)
	return lower + (int64(1)<<uint(oct) - 1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.total.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Merge adds o's counts into h. Safe against concurrent Observe on
// either side; the merged totals are eventually consistent.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of
// the bucket holding the q*Count-th value: within one bucket width
// (~3.1%) of the true order statistic, never below it (except that the
// overall Max caps the estimate exactly). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Quantiles(q)[0]
}

// Quantiles estimates several quantiles in one pass over the counters.
// qs must be ascending; out-of-range values clamp to [0,1].
func (h *Histogram) Quantiles(qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	total := h.total.Load()
	if total == 0 || len(qs) == 0 {
		return out
	}
	max := h.max.Load()
	var seen int64
	qi := 0
	for i := 0; i < numBuckets && qi < len(qs); i++ {
		seen += h.counts[i].Load()
		for qi < len(qs) {
			q := qs[qi]
			if q < 0 {
				q = 0
			} else if q > 1 {
				q = 1
			}
			// rank: the smallest count covering fraction q, at least 1.
			rank := int64(q*float64(total) + 0.9999999)
			if rank < 1 {
				rank = 1
			}
			if seen < rank {
				break
			}
			v := bucketUpper(i)
			if v > max {
				v = max
			}
			out[qi] = time.Duration(v)
			qi++
		}
	}
	for ; qi < len(qs); qi++ {
		out[qi] = time.Duration(max)
	}
	return out
}
