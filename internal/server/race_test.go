package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAdviseDuringReload is the serving layer's central
// concurrency guarantee, run under -race in CI: 32 goroutines hammer
// /v1/advise while another goroutine hot-swaps the knowledge base back and
// forth between two KBs with different algorithm suites and record counts.
// Every response must be self-consistent against exactly one snapshot: the
// generation it reports determines which KB it was scored on, and the
// ranked algorithms and record count must match that KB exactly — a torn
// response (generation from one KB, ranking from the other) fails.
func TestConcurrentAdviseDuringReload(t *testing.T) {
	dir := t.TempDir()
	kbA := testKB("alpha", "beta")          // 6 records, generations 0, 2, 4, ...
	kbB := testKB("gamma", "delta", "zeta") // 9 records, generations 1, 3, 5, ...
	pathA := writeKBFile(t, dir, "a.json", kbA)
	pathB := writeKBFile(t, dir, "b.json", kbB)
	wantAlgs := map[uint64]string{0: "alpha,beta", 1: "delta,gamma,zeta"}
	wantRecords := map[uint64]int{0: 6, 1: 9}

	srv := newTestServer(t, kbA, WithBatchWindow(100*time.Microsecond))

	const (
		workers   = 32
		perWorker = 25
		reloads   = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker+reloads)

	// Reloader: swap B, A, B, A, ... while the advisers run.
	stop := make(chan struct{})
	var reloadWG sync.WaitGroup
	reloadWG.Add(1)
	go func() {
		defer reloadWG.Done()
		paths := []string{pathB, pathA}
		for i := 0; i < reloads; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w := do(srv, "POST", "/v1/kb/reload", `{"path": "`+paths[i%2]+`"}`)
			if w.Code != http.StatusOK {
				errs <- fmt.Errorf("reload %d: status %d: %s", i, w.Code, w.Body.String())
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sev := float64((g*perWorker+i)%50) / 100 // 0.00 .. 0.49
				body := fmt.Sprintf(`{"severities": [0, 0, 0, 0, %.2f]}`, sev)
				w := do(srv, "POST", "/v1/advise", body)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("worker %d req %d: status %d: %s", g, i, w.Code, w.Body.String())
					return
				}
				var resp adviseResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- fmt.Errorf("worker %d req %d: %v", g, i, err)
					return
				}
				parity := resp.KB.Generation % 2
				names := make([]string, len(resp.Advice.Ranked))
				for j, r := range resp.Advice.Ranked {
					names[j] = r.Algorithm
				}
				sort.Strings(names)
				if got := strings.Join(names, ","); got != wantAlgs[parity] {
					errs <- fmt.Errorf("torn response: generation %d ranked %q, want %q",
						resp.KB.Generation, got, wantAlgs[parity])
					return
				}
				if resp.KB.Records != wantRecords[parity] {
					errs <- fmt.Errorf("torn response: generation %d records %d, want %d",
						resp.KB.Generation, resp.KB.Records, wantRecords[parity])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	reloadWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := srv.Metrics()
	if m.Advises != workers*perWorker {
		t.Fatalf("advises = %d, want %d", m.Advises, workers*perWorker)
	}
	t.Logf("served %d advise calls across %d reloads: %d batches (mean %.1f, max %d), cache hit rate %.2f",
		m.Advises, m.Reloads, m.Batches, m.MeanBatchSize, m.MaxBatchSize, m.CacheHitRate)
}

// TestGracefulShutdownDrain proves a live request survives shutdown: an
// advise call held in a long batching window is in flight when the serve
// context is canceled; Serve must drain it (200) rather than kill it, then
// stop accepting new connections.
func TestGracefulShutdownDrain(t *testing.T) {
	srv := newTestServer(t, testKB("alpha", "beta"),
		WithBatchWindow(300*time.Millisecond), WithDrainTimeout(5*time.Second))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/advise", "application/json",
			strings.NewReader(`{"severities": [0.3]}`))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err != nil {
			reqDone <- err
			return
		}
		if resp.StatusCode != http.StatusOK {
			reqDone <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		reqDone <- nil
	}()

	// Let the request enter its batching window, then pull the plug.
	time.Sleep(75 * time.Millisecond)
	cancel()

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request was dropped during shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve = %v, want clean nil after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if _, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
		t.Fatal("listener should be closed after shutdown")
	}
}
