package server

import (
	"net/http"
	"testing"
)

func TestAdviseKeyQuantization(t *testing.T) {
	a := adviseKey(3, []float64{0.199, 0, 0.5})
	b := adviseKey(3, []float64{0.201, 0.004, 0.5})
	if a != b {
		t.Fatalf("near-identical profiles should share a key: %q vs %q", a, b)
	}
	if adviseKey(3, []float64{0.25, 0, 0.5}) == a {
		t.Fatal("distinct profiles must not collide")
	}
	if adviseKey(4, []float64{0.199, 0, 0.5}) == a {
		t.Fatal("generations must partition the key space")
	}
}

func TestAdviceCacheLRU(t *testing.T) {
	c := newAdviceCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	// a is now most recent; inserting c must evict b.
	if ev := c.put("c", []byte("C")); ev != 1 {
		t.Fatalf("evictions = %d", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	// Overwriting refreshes in place, no eviction.
	if ev := c.put("a", []byte("A2")); ev != 0 {
		t.Fatalf("overwrite evicted %d", ev)
	}
	if body, _ := c.get("a"); string(body) != "A2" {
		t.Fatalf("body = %q", body)
	}
}

func TestAdviceCacheDisabled(t *testing.T) {
	c := newAdviceCache(0)
	if ev := c.put("a", []byte("A")); ev != 0 {
		t.Fatalf("evictions = %d", ev)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache must always miss")
	}
}

func TestAdviseCacheHitPath(t *testing.T) {
	srv := newTestServer(t, testKB("alpha", "beta"))
	body := `{"severities": [0.2, 0, 0.1]}`

	w1 := do(srv, "POST", "/v1/advise", body)
	if w1.Code != http.StatusOK || w1.Header().Get("X-OpenBI-Cache") != "miss" {
		t.Fatalf("first call: %d %q", w1.Code, w1.Header().Get("X-OpenBI-Cache"))
	}
	// A quantization-equivalent profile hits the same entry.
	w2 := do(srv, "POST", "/v1/advise", `{"severities": [0.201, 0, 0.099]}`)
	if w2.Code != http.StatusOK || w2.Header().Get("X-OpenBI-Cache") != "hit" {
		t.Fatalf("second call: %d %q", w2.Code, w2.Header().Get("X-OpenBI-Cache"))
	}
	if w1.Body.String() != w2.Body.String() {
		t.Fatal("hit must serve byte-identical advice")
	}
}

func TestAdviseCacheEviction(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"), WithCacheSize(1))
	first := `{"severities": [0.1]}`
	second := `{"severities": [0.5]}`
	do(srv, "POST", "/v1/advise", first)
	do(srv, "POST", "/v1/advise", second) // evicts first
	w := do(srv, "POST", "/v1/advise", first)
	if w.Header().Get("X-OpenBI-Cache") != "miss" {
		t.Fatal("evicted entry must miss")
	}
	m := srv.Metrics()
	if m.CacheEvictions < 2 {
		t.Fatalf("evictions = %d, want >= 2", m.CacheEvictions)
	}
	if m.CacheEntries != 1 {
		t.Fatalf("entries = %d", m.CacheEntries)
	}
}

func TestReloadInvalidatesCache(t *testing.T) {
	dir := t.TempDir()
	path := writeKBFile(t, dir, "same.json", testKB("alpha", "beta"))
	srv := newTestServer(t, testKB("alpha", "beta"), WithKBPath(path))
	body := `{"severities": [0.2]}`
	do(srv, "POST", "/v1/advise", body)
	if w := do(srv, "POST", "/v1/advise", body); w.Header().Get("X-OpenBI-Cache") != "hit" {
		t.Fatal("warm-up should hit")
	}
	if w := do(srv, "POST", "/v1/kb/reload", ""); w.Code != http.StatusOK {
		t.Fatalf("reload = %d", w.Code)
	}
	// Identical KB content, but a new generation: the old entry is dead.
	w := do(srv, "POST", "/v1/advise", body)
	if w.Header().Get("X-OpenBI-Cache") != "miss" {
		t.Fatal("reload must invalidate cached advice")
	}
	resp := decode[adviseResponse](t, w)
	if resp.KB.Generation != 1 {
		t.Fatalf("generation = %d", resp.KB.Generation)
	}
}
