package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"openbi/internal/oberr"
)

// errorBody is the uniform JSON error envelope:
//
//	{"error": {"status": 422, "code": "column_not_found", "message": "..."}}
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// statusFor maps the pipeline's typed error taxonomy onto HTTP statuses and
// stable machine-readable codes:
//
//	oberr.ErrColumnNotFound    422 column_not_found
//	oberr.ErrTooFewRows        422 too_few_rows
//	oberr.ErrBadSyntax         422 bad_syntax
//	oberr.ErrEmptyKB           503 empty_kb
//	oberr.ErrUnknownAlgorithm  400 unknown_algorithm
//	oberr.ErrBadConfig         400 bad_config
//	oberr.ErrBadManifest       400 bad_manifest
//	oberr.ErrManifestMismatch  422 manifest_mismatch
//	oberr.ErrUnsupportedFormat 415 unsupported_format
//	context.DeadlineExceeded   504 timeout
//	context.Canceled           503 canceled
//	errServerClosed            503 server_closed
//	errOverloaded              429 overloaded (+ Retry-After)
//	*http.MaxBytesError        413 payload_too_large
//	anything else              500 internal
func statusFor(err error) (int, string) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, "payload_too_large"
	case errors.Is(err, oberr.ErrColumnNotFound):
		return http.StatusUnprocessableEntity, "column_not_found"
	case errors.Is(err, oberr.ErrTooFewRows):
		return http.StatusUnprocessableEntity, "too_few_rows"
	case errors.Is(err, oberr.ErrBadSyntax):
		return http.StatusUnprocessableEntity, "bad_syntax"
	case errors.Is(err, oberr.ErrEmptyKB):
		return http.StatusServiceUnavailable, "empty_kb"
	case errors.Is(err, oberr.ErrUnknownAlgorithm):
		return http.StatusBadRequest, "unknown_algorithm"
	case errors.Is(err, oberr.ErrBadConfig):
		return http.StatusBadRequest, "bad_config"
	case errors.Is(err, oberr.ErrBadManifest):
		return http.StatusBadRequest, "bad_manifest"
	case errors.Is(err, oberr.ErrManifestMismatch):
		return http.StatusUnprocessableEntity, "manifest_mismatch"
	case errors.Is(err, oberr.ErrUnsupportedFormat):
		return http.StatusUnsupportedMediaType, "unsupported_format"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, errServerClosed):
		return http.StatusServiceUnavailable, "server_closed"
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeError maps err through statusFor and writes the JSON envelope.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := statusFor(err)
	s.writeErrorCode(w, status, code, err.Error())
}

// writeErrorCode writes the JSON envelope with an explicit status and code
// (for request-shape errors that carry no pipeline error value).
func (s *Server) writeErrorCode(w http.ResponseWriter, status int, code, message string) {
	s.metrics.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: errorDetail{
		Status: status, Code: code, Message: message,
	}})
}
