package server

import (
	"context"
	"errors"
	"strconv"
	"sync/atomic"
	"time"
)

// errOverloaded reports a request shed by admission control: the inflight
// budget and the wait queue are both full. Mapped to 429 overloaded with a
// Retry-After hint (see httperr.go) — shedding fast and explicitly is the
// overload contract; queuing unboundedly would melt every request's
// latency instead of failing a few cheaply.
var errOverloaded = errors.New("server overloaded: inflight and queue budgets are full")

// admission is the bounded inflight/queue budget in front of the heavy
// endpoints (advise, profile, lod/profile). It is two nested limits:
//
//   - at most maxInflight requests execute concurrently (a buffered
//     channel used as a counting semaphore), and
//   - at most queueDepth further requests wait for a slot; anything past
//     that is shed immediately with errOverloaded.
//
// With a bounded queue, the worst-case wait for an admitted request is
// queueDepth/maxInflight service times (Little's law), so p99 under
// overload stays a function of the configured budgets, not of the offered
// load. A nil *admission disables the gate entirely (zero cost).
type admission struct {
	sem        chan struct{}
	queueDepth int64
	maxWait    time.Duration

	queued   atomic.Int64
	inflight atomic.Int64
	shed     atomic.Int64
	admitted atomic.Int64
}

// newAdmission builds the gate; maxInflight <= 0 returns nil (disabled).
func newAdmission(maxInflight, queueDepth int, maxWait time.Duration) *admission {
	if maxInflight <= 0 {
		return nil
	}
	return &admission{
		sem:        make(chan struct{}, maxInflight),
		queueDepth: int64(queueDepth),
		maxWait:    maxWait,
	}
}

// acquire claims an execution slot, waiting in the bounded queue when all
// slots are busy. It returns errOverloaded when the queue is full or the
// wait exceeds the queue deadline, ctx.Err() when the client gave up, and
// errServerClosed when the server shut down while waiting.
func (a *admission) acquire(ctx context.Context, done <-chan struct{}) error {
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		a.admitted.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > a.queueDepth {
		a.queued.Add(-1)
		a.shed.Add(1)
		return errOverloaded
	}
	defer a.queued.Add(-1)
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		a.admitted.Add(1)
		return nil
	case <-timer.C:
		// The queue did not drain one slot's worth within the wait
		// budget — the server is saturated, not merely busy; shed.
		a.shed.Add(1)
		return errOverloaded
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return errServerClosed
	}
}

// release returns an execution slot.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
}

// retryAfterSeconds is the Retry-After hint on shed responses: the time
// for the queue to drain once (queueDepth slots at the current inflight
// width), rounded up to a whole second — an honest "come back when the
// backlog you saw has cleared" rather than a constant.
func (a *admission) retryAfterSeconds(p50 time.Duration) string {
	if p50 <= 0 {
		p50 = 50 * time.Millisecond // no latency signal yet; assume cheap requests
	}
	drain := time.Duration(a.queueDepth+1) * p50 / time.Duration(cap(a.sem))
	secs := int64((drain + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}
