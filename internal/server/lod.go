package server

import (
	"errors"
	"io"
	"net/http"
	"strings"

	"openbi/internal/core"
	"openbi/internal/rdf"
)

// lodProfileResponse is the JSON shape of POST /v1/lod/profile: the
// graph-level quality profile plus the dimensions of the table the same
// stream would project to (the client gets a preview of the common
// representation without a second upload).
type lodProfileResponse struct {
	Triples  int                `json:"triples"`
	Entities int                `json:"entities"`
	Measures map[string]float64 `json:"measures"`
	// Projection previews the entity→table flattening of the largest
	// entity class (or the ?class=<IRI> override).
	Projection lodProjectionMeta `json:"projection"`
}

type lodProjectionMeta struct {
	// Class is the IRI of the projected entity class; omitted when the
	// graph had no typed subjects and every subject was projected.
	Class   string `json:"class,omitempty"`
	Rows    int    `json:"rows"`
	Columns int    `json:"columns"`
}

// capTrackingReader remembers whether the wrapped MaxBytesReader tripped
// its limit, so the handler can report the cap (413) instead of the
// parse error the truncation provoked downstream.
type capTrackingReader struct {
	r      io.Reader
	capErr error
}

func (c *capTrackingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	var tooBig *http.MaxBytesError
	if err != nil && errors.As(err, &tooBig) {
		c.capErr = err
	}
	return n, err
}

// lodFormat resolves the RDF serialization of a request: the ?format
// query parameter ("nt" / "ttl") wins, then the Content-Type
// (application/n-triples, text/turtle); the default is N-Triples.
func lodFormat(r *http.Request) string {
	if f := r.URL.Query().Get("format"); f != "" {
		return f
	}
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(strings.ToLower(ct)) {
	case "text/turtle", "application/x-turtle":
		return "ttl"
	case "", "application/n-triples", "text/plain", "application/octet-stream",
		"application/x-www-form-urlencoded": // curl's -d/--data-binary default
		return "nt"
	default:
		return ct // unknown media type -> 415 via the decoder's format check
	}
}

// handleLODProfile streams an RDF request body through the single-pass
// ingestion pipeline (quality sketch + projector; see core.IngestLOD) —
// the body is never buffered whole, so the endpoint's memory is bounded
// by the projected content regardless of upload size, up to the usual
// body cap (413 beyond it). Parse failures map to 422 bad_syntax, unknown
// formats to 415 unsupported_format.
func (s *Server) handleLODProfile(w http.ResponseWriter, r *http.Request) {
	s.metrics.lodProfiles.Add(1)
	opts := rdf.ProjectOptions{LargestClass: true}
	if class := r.URL.Query().Get("class"); class != "" {
		opts = rdf.ProjectOptions{Class: rdf.NewIRI(class)}
	}
	body := &capTrackingReader{r: http.MaxBytesReader(w, r.Body, s.maxBodyBytes)}
	ing, err := core.IngestLOD(body, lodFormat(r), opts)
	if err != nil {
		// A body truncated by the cap usually fails the parser first; the
		// cap is the real cause, so 413 must win over 422.
		if body.capErr != nil {
			err = body.capErr
		}
		s.writeError(w, err)
		return
	}
	p := ing.Profile
	writeJSON(w, http.StatusOK, lodProfileResponse{
		Triples:  p.Triples,
		Entities: p.Entities,
		Measures: map[string]float64{
			"propertyCompleteness": p.PropertyCompleteness,
			"danglingLinkRatio":    p.DanglingLinkRatio,
			"sameAsRatio":          p.SameAsRatio,
			"labelCoverage":        p.LabelCoverage,
			"predicatesPerClass":   p.PredicatesPerClass,
			"classEntropy":         p.ClassEntropy,
		},
		Projection: lodProjectionMeta{
			Class:   ing.Class,
			Rows:    ing.Table.NumRows(),
			Columns: ing.Table.NumCols(),
		},
	})
}
