package server

import (
	"bytes"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openbi/internal/kb"
	"openbi/internal/provenance"
)

// writeKBAndManifest writes base as dir/name plus its manifest beside it
// (name.manifest), optionally signed and with chain fields applied, and
// returns both paths.
func writeKBAndManifest(t *testing.T, dir, name string, base *kb.KnowledgeBase,
	priv ed25519.PrivateKey, mutate func(*provenance.Manifest)) (string, string) {
	t.Helper()
	kbPath := filepath.Join(dir, name)
	f, err := os.Create(kbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	doc, err := os.ReadFile(kbPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kb.BuildManifest(doc, base)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(m)
	}
	if priv != nil {
		if err := m.Sign(priv); err != nil {
			t.Fatal(err)
		}
	}
	manifestPath := kbPath + ".manifest"
	mf, err := os.Create(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	return kbPath, manifestPath
}

func reloadBody(t *testing.T, fields map[string]any) string {
	t.Helper()
	body, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestReloadVerifiesManifestBesideKB: a manifest sitting beside the KB is
// picked up and verified even without -require-manifest, its root shows up
// in GET /v1/kb, and a corrupted KB is refused with the first bad record
// named.
func TestReloadVerifiesManifestBesideKB(t *testing.T) {
	dir := t.TempDir()
	kbPath, _ := writeKBAndManifest(t, dir, "kb.json", testKB("gamma", "delta"), nil, nil)
	srv := newTestServer(t, testKB("alpha"))

	w := do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": kbPath}))
	if w.Code != http.StatusOK {
		t.Fatalf("reload status = %d body = %s", w.Code, w.Body.String())
	}
	re := decode[kbResponse](t, w)
	if re.ManifestRoot == "" || re.ManifestSigner != "" {
		t.Fatalf("reload reply = %+v, want unsigned manifest root", re)
	}
	kw := do(srv, "GET", "/v1/kb", "")
	if got := decode[kbResponse](t, kw); got.ManifestRoot != re.ManifestRoot {
		t.Fatalf("GET /v1/kb root %q, reload reported %q", got.ManifestRoot, re.ManifestRoot)
	}

	// Corrupt one record's bytes in place: the reload must fail 422 and
	// name the record.
	doc, err := os.ReadFile(kbPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(doc, []byte(`"algorithm": "delta"`), []byte(`"algorithm": "DELTA"`), 1)
	if err := os.WriteFile(kbPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	w = do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": kbPath}))
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "manifest_mismatch" {
		t.Fatalf("tampered reload: status = %d code = %s", w.Code, w.Body.String())
	}
	if body := w.Body.String(); !strings.Contains(body, "record 3") {
		t.Fatalf("tampered reload does not name record 3: %s", body)
	}
	// The serving KB is untouched by the refused reload.
	if got := decode[kbResponse](t, do(srv, "GET", "/v1/kb", "")); got.Generation != 1 {
		t.Fatalf("generation after refused reload = %d, want 1", got.Generation)
	}
}

// TestReloadRequireManifest: with WithManifestRequired a reload without a
// manifest is refused 422; a valid manifest hot-swaps normally.
func TestReloadRequireManifest(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testKB("alpha"), WithManifestRequired())

	bare := filepath.Join(dir, "bare.json")
	f, err := os.Create(bare)
	if err != nil {
		t.Fatal(err)
	}
	if err := testKB("gamma").Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w := do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": bare}))
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "manifest_mismatch" {
		t.Fatalf("manifest-less reload: status = %d body = %s", w.Code, w.Body.String())
	}

	kbPath, _ := writeKBAndManifest(t, dir, "kb.json", testKB("gamma", "delta"), nil, nil)
	w = do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": kbPath}))
	if w.Code != http.StatusOK {
		t.Fatalf("manifested reload: status = %d body = %s", w.Code, w.Body.String())
	}
}

// TestReloadSignaturePolicy: with a pinned key, unsigned and wrong-key
// manifests are refused; the right key passes and is reported as signer.
func TestReloadSignaturePolicy(t *testing.T) {
	dir := t.TempDir()
	pub, priv, err := provenance.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	_, otherPriv, err := provenance.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, testKB("alpha"), WithManifestKey(pub))

	unsigned, _ := writeKBAndManifest(t, dir, "unsigned.json", testKB("gamma"), nil, nil)
	w := do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": unsigned}))
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "manifest_mismatch" {
		t.Fatalf("unsigned with pinned key: status = %d body = %s", w.Code, w.Body.String())
	}

	wrong, _ := writeKBAndManifest(t, dir, "wrong.json", testKB("gamma"), otherPriv, nil)
	w = do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": wrong}))
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "manifest_mismatch" {
		t.Fatalf("wrong key: status = %d body = %s", w.Code, w.Body.String())
	}

	signed, _ := writeKBAndManifest(t, dir, "signed.json", testKB("gamma"), priv, nil)
	w = do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": signed}))
	if w.Code != http.StatusOK {
		t.Fatalf("signed reload: status = %d body = %s", w.Code, w.Body.String())
	}
	if re := decode[kbResponse](t, w); re.ManifestSigner != hex.EncodeToString(pub) {
		t.Fatalf("signer = %q, want pinned key", re.ManifestSigner)
	}
}

// TestReloadChainedManifests: once a manifested generation is serving,
// a reload whose manifest records a different dataset hash or grid
// fingerprint breaks the chain and is refused 422.
func TestReloadChainedManifests(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testKB("alpha"))
	chain := func(m *provenance.Manifest) {
		m.DatasetHash = "d1"
		m.GridFingerprint = "g1"
	}
	first, _ := writeKBAndManifest(t, dir, "first.json", testKB("gamma"), nil, chain)
	w := do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": first}))
	if w.Code != http.StatusOK {
		t.Fatalf("first reload: status = %d body = %s", w.Code, w.Body.String())
	}

	foreign, _ := writeKBAndManifest(t, dir, "foreign.json", testKB("delta"), nil,
		func(m *provenance.Manifest) { m.DatasetHash = "d2"; m.GridFingerprint = "g1" })
	w = do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": foreign}))
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "manifest_mismatch" {
		t.Fatalf("chain-breaking reload: status = %d body = %s", w.Code, w.Body.String())
	}

	next, _ := writeKBAndManifest(t, dir, "next.json", testKB("gamma", "delta"), nil, chain)
	w = do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": next}))
	if w.Code != http.StatusOK {
		t.Fatalf("chained reload: status = %d body = %s", w.Code, w.Body.String())
	}
}

// TestReloadShardsWithManifest: shard-mode reloads verify the merged KB
// against an explicitly named manifest; a required-manifest server refuses
// shard reloads that bring none.
func TestReloadShardsWithManifest(t *testing.T) {
	dir := t.TempDir()
	paths := testShards(t, dir, 2, "gamma", "delta", "epsilon")
	srv := newTestServer(t, testKB("alpha"), WithManifestRequired())

	w := do(srv, "POST", "/v1/kb/reload", shardReloadBody(t, paths))
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "manifest_mismatch" {
		t.Fatalf("manifest-less shard reload: status = %d body = %s", w.Code, w.Body.String())
	}

	// Build the manifest a merge job would have emitted for these shards.
	shards := make([]*kb.Shard, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := kb.LoadShard(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
	}
	merged, err := kb.Merge(shards...)
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := merged.Save(&doc); err != nil {
		t.Fatal(err)
	}
	m, err := kb.BuildMergedManifest(doc.Bytes(), merged, shards...)
	if err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(dir, "merged.manifest")
	mf, err := os.Create(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	w = do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"shards": paths, "manifest": manifestPath}))
	if w.Code != http.StatusOK {
		t.Fatalf("manifested shard reload: status = %d body = %s", w.Code, w.Body.String())
	}
	if re := decode[kbResponse](t, w); re.ManifestRoot != m.MerkleRoot {
		t.Fatalf("shard reload root = %q, manifest root = %q", re.ManifestRoot, m.MerkleRoot)
	}
}

// TestReloadMalformedManifest: a manifest that cannot be parsed is 400
// bad_manifest, distinct from a verification mismatch.
func TestReloadMalformedManifest(t *testing.T) {
	dir := t.TempDir()
	kbPath, manifestPath := writeKBAndManifest(t, dir, "kb.json", testKB("gamma"), nil, nil)
	if err := os.WriteFile(manifestPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, testKB("alpha"))
	w := do(srv, "POST", "/v1/kb/reload", reloadBody(t, map[string]any{"path": kbPath}))
	if w.Code != http.StatusBadRequest || errCode(t, w) != "bad_manifest" {
		t.Fatalf("malformed manifest: status = %d body = %s", w.Code, w.Body.String())
	}
}
