package server

import (
	"context"
	"errors"
	"time"
)

// errServerClosed reports an advise call submitted after Close.
var errServerClosed = errors.New("server closed")

// adviseJob is one advise request waiting for the dispatcher. The out
// channel is buffered so the dispatcher never blocks on a caller that gave
// up (timeout / disconnect).
type adviseJob struct {
	severities []float64
	out        chan adviseResult
}

type adviseResult struct {
	body []byte
	// gen is the KB generation the body was scored against — the batch's
	// pinned state, which may be newer than the one the handler saw.
	gen uint64
	err error
}

// enqueue hands a job to the dispatcher, honoring request cancellation and
// server shutdown. The leading non-blocking done check makes rejection
// deterministic once Close has returned (the main select would otherwise
// race a still-draining dispatcher).
func (s *Server) enqueue(ctx context.Context, job *adviseJob) error {
	select {
	case <-s.done:
		return errServerClosed
	default:
	}
	select {
	case s.jobs <- job:
		return nil
	case <-s.done:
		return errServerClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// dispatch is the micro-batching loop: it blocks for the first pending
// advise job, widens the batch for up to one batching window (bounded by
// the batch size cap), and scores the whole batch in one pass against a
// single pinned snapshot. Batching exploits the snapshot architecture
// twice: every response in a batch is consistent with exactly one KB
// generation, and duplicate profiles inside a batch are scored once.
func (s *Server) dispatch() {
	for {
		var first *adviseJob
		select {
		case first = <-s.jobs:
		case <-s.done:
			s.failPending()
			return
		}
		batch := append(make([]*adviseJob, 0, s.batchMax), first)
		batch = s.fill(batch)
		s.runBatch(batch)
	}
}

// fill widens a batch until the window elapses, the cap is hit, or the
// server closes. A zero window only drains jobs already queued.
func (s *Server) fill(batch []*adviseJob) []*adviseJob {
	if s.batchWindow <= 0 {
		for len(batch) < s.batchMax {
			select {
			case job := <-s.jobs:
				batch = append(batch, job)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(s.batchWindow)
	defer timer.Stop()
	for len(batch) < s.batchMax {
		select {
		case job := <-s.jobs:
			batch = append(batch, job)
		case <-timer.C:
			return batch
		case <-s.done:
			return batch
		}
	}
	return batch
}

// runBatch scores one batch against one pinned snapshot. Distinct
// (generation, quantized severities) keys are computed and serialized once;
// duplicates and cache hits share the bytes.
func (s *Server) runBatch(batch []*adviseJob) {
	state := s.state.Load()
	s.metrics.batches.Add(1)
	s.metrics.batchedJobs.Add(int64(len(batch)))
	s.metrics.noteBatchSize(len(batch))

	bodies := make(map[string][]byte, len(batch))
	for _, job := range batch {
		key := adviseKey(state.gen, job.severities)
		body, ok := bodies[key]
		if !ok {
			if cached, hit := s.cache.get(key); hit {
				// Another batch populated it since the handler's miss.
				body = cached
			} else {
				advice, err := state.snap.AdviseSeverities(job.severities)
				if err != nil {
					job.out <- adviseResult{err: err}
					continue
				}
				body, err = buildAdviseBody(state, advice)
				if err != nil {
					job.out <- adviseResult{err: err}
					continue
				}
				s.metrics.cacheEvictions.Add(int64(s.cache.put(key, body)))
			}
			bodies[key] = body
		}
		job.out <- adviseResult{body: body, gen: state.gen}
	}
}

// failPending drains jobs that raced with Close so their handlers do not
// wait out the full request timeout.
func (s *Server) failPending() {
	for {
		select {
		case job := <-s.jobs:
			job.out <- adviseResult{err: errServerClosed}
		default:
			return
		}
	}
}
