package server

import "sync/atomic"

// metrics is the server's expvar-style counter set. Counters are plain
// atomics so the hot path (advise) pays one increment, never a lock; the
// /v1/metrics handler assembles a consistent-enough JSON snapshot from
// them on demand.
type metrics struct {
	requests atomic.Int64 // all requests, any endpoint
	// errors counts structured error envelopes written by handlers; bare
	// routing rejections (404 unknown path, 405 wrong method) come from
	// the mux and are not included.
	errors atomic.Int64

	advises     atomic.Int64 // POST /v1/advise
	profiles    atomic.Int64 // POST /v1/profile
	lodProfiles atomic.Int64 // POST /v1/lod/profile
	reloads     atomic.Int64 // successful /v1/kb/reload swaps

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64

	batches      atomic.Int64 // scoring passes run
	batchedJobs  atomic.Int64 // advise jobs that went through them
	maxBatchSize atomic.Int64
}

// noteBatchSize keeps a running maximum of observed batch sizes.
func (m *metrics) noteBatchSize(n int) {
	for {
		cur := m.maxBatchSize.Load()
		if int64(n) <= cur || m.maxBatchSize.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// MetricsSnapshot is the JSON shape of GET /v1/metrics.
type MetricsSnapshot struct {
	Requests    int64 `json:"requests"`
	Errors      int64 `json:"errors"`
	Advises     int64 `json:"advises"`
	Profiles    int64 `json:"profiles"`
	LODProfiles int64 `json:"lodProfiles"`
	Reloads     int64 `json:"reloads"`

	CacheHits      int64   `json:"cacheHits"`
	CacheMisses    int64   `json:"cacheMisses"`
	CacheEvictions int64   `json:"cacheEvictions"`
	CacheEntries   int     `json:"cacheEntries"`
	CacheHitRate   float64 `json:"cacheHitRate"`

	Batches       int64   `json:"batches"`
	BatchedJobs   int64   `json:"batchedJobs"`
	MeanBatchSize float64 `json:"meanBatchSize"`
	MaxBatchSize  int64   `json:"maxBatchSize"`

	KBGeneration uint64  `json:"kbGeneration"`
	KBRecords    int     `json:"kbRecords"`
	KBAgeSeconds float64 `json:"kbAgeSeconds"`
}

// Metrics returns the current counter values plus derived rates and the
// published snapshot's age.
func (s *Server) Metrics() MetricsSnapshot {
	m := s.metrics
	state := s.state.Load()
	snap := MetricsSnapshot{
		Requests:       m.requests.Load(),
		Errors:         m.errors.Load(),
		Advises:        m.advises.Load(),
		Profiles:       m.profiles.Load(),
		LODProfiles:    m.lodProfiles.Load(),
		Reloads:        m.reloads.Load(),
		CacheHits:      m.cacheHits.Load(),
		CacheMisses:    m.cacheMisses.Load(),
		CacheEvictions: m.cacheEvictions.Load(),
		CacheEntries:   s.cache.len(),
		Batches:        m.batches.Load(),
		BatchedJobs:    m.batchedJobs.Load(),
		MaxBatchSize:   m.maxBatchSize.Load(),
		KBGeneration:   state.gen,
		KBRecords:      state.snap.Len(),
		KBAgeSeconds:   s.now().Sub(state.loadedAt).Seconds(),
	}
	if lookups := snap.CacheHits + snap.CacheMisses; lookups > 0 {
		snap.CacheHitRate = float64(snap.CacheHits) / float64(lookups)
	}
	if snap.Batches > 0 {
		snap.MeanBatchSize = float64(snap.BatchedJobs) / float64(snap.Batches)
	}
	return snap
}
