package server

import (
	"sync/atomic"
	"time"
)

// metrics is the server's expvar-style counter set. Counters are plain
// atomics so the hot path (advise) pays one increment, never a lock; the
// /v1/metrics handler assembles a consistent-enough JSON snapshot from
// them on demand.
type metrics struct {
	requests atomic.Int64 // all requests, any endpoint
	// errors counts structured error envelopes written by handlers; bare
	// routing rejections (404 unknown path, 405 wrong method) come from
	// the mux and are not included.
	errors atomic.Int64

	advises     atomic.Int64 // POST /v1/advise
	profiles    atomic.Int64 // POST /v1/profile
	lodProfiles atomic.Int64 // POST /v1/lod/profile
	reloads     atomic.Int64 // successful /v1/kb/reload swaps

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64

	batches      atomic.Int64 // scoring passes run
	batchedJobs  atomic.Int64 // advise jobs that went through them
	maxBatchSize atomic.Int64
}

// noteBatchSize keeps a running maximum of observed batch sizes.
func (m *metrics) noteBatchSize(n int) {
	for {
		cur := m.maxBatchSize.Load()
		if int64(n) <= cur || m.maxBatchSize.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// EndpointStats is one endpoint's latency distribution in GET /v1/metrics,
// estimated from a log-bucketed histogram (quantiles within ~3% above the
// true order statistic, conservative side).
type EndpointStats struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// MetricsSnapshot is the JSON shape of GET /v1/metrics. Existing keys are
// a compatibility contract — additions only.
type MetricsSnapshot struct {
	Requests    int64 `json:"requests"`
	Errors      int64 `json:"errors"`
	Advises     int64 `json:"advises"`
	Profiles    int64 `json:"profiles"`
	LODProfiles int64 `json:"lodProfiles"`
	Reloads     int64 `json:"reloads"`

	CacheHits      int64   `json:"cacheHits"`
	CacheMisses    int64   `json:"cacheMisses"`
	CacheEvictions int64   `json:"cacheEvictions"`
	CacheEntries   int     `json:"cacheEntries"`
	CacheHitRate   float64 `json:"cacheHitRate"`

	Batches       int64   `json:"batches"`
	BatchedJobs   int64   `json:"batchedJobs"`
	MeanBatchSize float64 `json:"meanBatchSize"`
	MaxBatchSize  int64   `json:"maxBatchSize"`

	KBGeneration uint64  `json:"kbGeneration"`
	KBRecords    int     `json:"kbRecords"`
	KBAgeSeconds float64 `json:"kbAgeSeconds"`

	// Admission control. MaxInflight == 0 means the gate is disabled and
	// the gauges below stay zero.
	MaxInflight int   `json:"maxInflight"`
	QueueDepth  int   `json:"queueDepth"`
	Inflight    int64 `json:"inflight"`
	Queued      int64 `json:"queued"`
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`

	// Per-endpoint latency distributions (milliseconds), keyed by the
	// route's short name (advise, profile, lodProfile, kb, reload,
	// metrics, healthz).
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// Metrics returns the current counter values plus derived rates and the
// published snapshot's age.
func (s *Server) Metrics() MetricsSnapshot {
	m := s.metrics
	state := s.state.Load()
	snap := MetricsSnapshot{
		Requests:       m.requests.Load(),
		Errors:         m.errors.Load(),
		Advises:        m.advises.Load(),
		Profiles:       m.profiles.Load(),
		LODProfiles:    m.lodProfiles.Load(),
		Reloads:        m.reloads.Load(),
		CacheHits:      m.cacheHits.Load(),
		CacheMisses:    m.cacheMisses.Load(),
		CacheEvictions: m.cacheEvictions.Load(),
		CacheEntries:   s.cache.len(),
		Batches:        m.batches.Load(),
		BatchedJobs:    m.batchedJobs.Load(),
		MaxBatchSize:   m.maxBatchSize.Load(),
		KBGeneration:   state.gen,
		KBRecords:      state.snap.Len(),
		KBAgeSeconds:   s.now().Sub(state.loadedAt).Seconds(),
	}
	if lookups := snap.CacheHits + snap.CacheMisses; lookups > 0 {
		snap.CacheHitRate = float64(snap.CacheHits) / float64(lookups)
	}
	if snap.Batches > 0 {
		snap.MeanBatchSize = float64(snap.BatchedJobs) / float64(snap.Batches)
	}
	if a := s.admission; a != nil {
		snap.MaxInflight = cap(a.sem)
		snap.QueueDepth = int(a.queueDepth)
		snap.Inflight = a.inflight.Load()
		snap.Queued = a.queued.Load()
		snap.Admitted = a.admitted.Load()
		snap.Shed = a.shed.Load()
	}
	snap.Endpoints = make(map[string]EndpointStats, len(s.latency))
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for name, hg := range s.latency {
		qs := hg.Quantiles(0.5, 0.99, 0.999)
		snap.Endpoints[name] = EndpointStats{
			Count:  hg.Count(),
			MeanMs: ms(hg.Mean()),
			P50Ms:  ms(qs[0]),
			P99Ms:  ms(qs[1]),
			P999Ms: ms(qs[2]),
			MaxMs:  ms(hg.Max()),
		}
	}
	return snap
}
