package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"openbi/internal/core"
	"openbi/internal/dq"
	"openbi/internal/hist"
	"openbi/internal/kb"
	"openbi/internal/oberr"
	"openbi/internal/provenance"
	"openbi/internal/table"
)

// routes builds the endpoint table. Go 1.22+ method patterns give free 405s
// for wrong verbs. Every handler is instrumented with a per-endpoint
// latency histogram; only the heavy data-plane endpoints sit behind the
// admission gate — health, metrics, KB metadata and reload must keep
// working while the server sheds load, or overload would also take out
// observability and the operator's ability to fix it.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("POST /v1/advise", s.instrument("advise", s.admit(s.handleAdvise)))
	mux.HandleFunc("POST /v1/profile", s.instrument("profile", s.admit(s.handleProfile)))
	mux.HandleFunc("POST /v1/lod/profile", s.instrument("lodProfile", s.admit(s.handleLODProfile)))
	mux.HandleFunc("GET /v1/kb", s.instrument("kb", s.handleKB))
	mux.HandleFunc("POST /v1/kb/reload", s.instrument("reload", s.handleReload))
	mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// instrument registers a latency histogram for one endpoint and wraps its
// handler to feed it. routes runs once at construction, so the map needs
// no locking afterwards; Observe itself is atomic. Wall time is measured
// with time.Now directly (not s.now, which tests pin) — latency is a real
// quantity even when the KB clock is stubbed.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hg := hist.New()
	s.latency[name] = hg
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hg.Observe(time.Since(start))
	}
}

// admit wraps a heavy handler with the admission gate. Shed requests get
// 429 overloaded plus a Retry-After estimated from the current advise p50
// (time for the backlog the client just saw to drain); a client that
// disconnects while queued gets its context error instead.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	if s.admission == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if err := s.admission.acquire(r.Context(), s.done); err != nil {
			if errors.Is(err, errOverloaded) {
				w.Header().Set("Retry-After", s.admission.retryAfterSeconds(s.latency["advise"].Quantile(0.5)))
			}
			s.writeError(w, err)
			return
		}
		defer s.admission.release()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ---- POST /v1/advise ----

// adviseRequest carries the data-quality fingerprint to rank algorithms
// for. Exactly one of the two fields must be set: Severities is the raw
// vector in dq.AllCriteria order (shorter vectors are zero-padded), Profile
// the same values keyed by criterion name.
type adviseRequest struct {
	Severities []float64          `json:"severities"`
	Profile    map[string]float64 `json:"profile"`
}

// kbMeta identifies the knowledge-base generation a response was computed
// against.
type kbMeta struct {
	Generation uint64    `json:"generation"`
	Records    int       `json:"records"`
	LoadedAt   time.Time `json:"loadedAt"`
	Source     string    `json:"source"`
}

// adviseResponse is the advise envelope: the ranked advice plus the exact
// KB generation that produced it, so a client (or the race test) can check
// self-consistency under concurrent reloads.
type adviseResponse struct {
	Advice kb.Advice `json:"advice"`
	KB     kbMeta    `json:"kb"`
}

// buildAdviseBody serializes one advise response against one pinned state.
// The bytes are shared between the wire, the batch fan-out and the cache.
func buildAdviseBody(state *kbState, advice kb.Advice) ([]byte, error) {
	return json.Marshal(adviseResponse{
		Advice: advice,
		KB: kbMeta{
			Generation: state.gen,
			Records:    state.snap.Len(),
			LoadedAt:   state.loadedAt,
			Source:     state.source,
		},
	})
}

// advisePool recycles advise body buffers: the fast path's only transient
// besides the key string. Everything derived from the buffer (key string,
// unmarshaled request) is a copy, so returning it at handler exit is safe.
var advisePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// handleAdvise is the hot path. Lookups are layered cheapest-first:
//
//  1. exact request bytes under the current generation (no JSON decode),
//  2. the quantized severity key (decode, no scoring),
//  3. the micro-batching dispatcher (scoring, bounded by the request
//     timeout), which caches the serialized result for both layers.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.metrics.advises.Add(1)
	bufp := advisePool.Get().(*[]byte)
	defer func() { *bufp = (*bufp)[:0]; advisePool.Put(bufp) }()
	raw, err := readAllInto(http.MaxBytesReader(w, r.Body, s.maxBodyBytes), bufp)
	if err != nil {
		s.writeBodyError(w, err)
		return
	}
	// With the cache disabled, skip key construction entirely — rawKey
	// copies the whole body, a pointless per-request allocation when
	// get/put would no-op anyway.
	cacheable := s.cache.max > 0
	gen := uint64(0)
	var bodyKey string
	if cacheable {
		gen = s.state.Load().gen
		if len(raw) <= rawKeyMaxBody {
			bodyKey = rawKey(gen, raw)
			if cached, ok := s.cache.get(bodyKey); ok {
				s.metrics.cacheHits.Add(1)
				s.writeAdvice(w, "hit", cached)
				return
			}
		}
	}

	var req adviseRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		s.writeErrorCode(w, http.StatusBadRequest, "bad_request", "decoding request body: "+err.Error())
		return
	}
	severities, err := req.severityVector()
	if err != nil {
		s.writeErrorCode(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if cacheable {
		if cached, ok := s.cache.get(adviseKey(gen, severities)); ok {
			s.metrics.cacheHits.Add(1)
			if bodyKey != "" {
				// Alias the exact bytes so the next identical request
				// skips the decode as well.
				s.metrics.cacheEvictions.Add(int64(s.cache.put(bodyKey, cached)))
			}
			s.writeAdvice(w, "hit", cached)
			return
		}
		s.metrics.cacheMisses.Add(1)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
	defer cancel()
	job := &adviseJob{severities: severities, out: make(chan adviseResult, 1)}
	if err := s.enqueue(ctx, job); err != nil {
		s.writeError(w, err)
		return
	}
	select {
	case res := <-job.out:
		s.finishAdvise(w, raw, res)
	case <-ctx.Done():
		s.writeError(w, ctx.Err())
	case <-s.done:
		// A job that raced Close into the queue may never be scored (the
		// dispatcher can exit between enqueue's send and its drain); fail
		// fast instead of sitting out the request timeout — but prefer a
		// result that was delivered concurrently with Close.
		select {
		case res := <-job.out:
			s.finishAdvise(w, raw, res)
		default:
			s.writeError(w, errServerClosed)
		}
	}
}

// finishAdvise writes a batch-scored result, aliasing the exact request
// bytes under the generation the batch actually scored (which may be newer
// than the one this handler first read — keying on the stale generation
// would create entries no future request could ever hit).
func (s *Server) finishAdvise(w http.ResponseWriter, raw []byte, res adviseResult) {
	if res.err != nil {
		s.writeError(w, res.err)
		return
	}
	if s.cache.max > 0 && len(raw) <= rawKeyMaxBody {
		s.metrics.cacheEvictions.Add(int64(s.cache.put(rawKey(res.gen, raw), res.body)))
	}
	s.writeAdvice(w, "miss", res.body)
}

// reloadPathAllowed confines client-named reload paths: when the server
// was configured with a KB path, overrides must stay in that file's
// directory — otherwise any network client could use the endpoint as a
// filesystem probe (distinct errors for missing vs unreadable files) or
// swap the serving KB to any readable file on the host. A server started
// without a KB path (programmatic embeds, tests) accepts any path; that
// choice is the embedder's.
func (s *Server) reloadPathAllowed(path string) bool {
	if s.kbPath == "" {
		return true
	}
	return filepath.Dir(filepath.Clean(path)) == filepath.Dir(filepath.Clean(s.kbPath))
}

// writeBodyError reports a request-body read failure: 413 for the size cap
// (via statusFor), 400 for everything else.
func (s *Server) writeBodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.writeError(w, err)
		return
	}
	s.writeErrorCode(w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
}

// readAllInto is io.ReadAll over a caller-owned buffer (grown in place and
// written back through bufp so the pool keeps the growth).
func readAllInto(r io.Reader, bufp *[]byte) ([]byte, error) {
	buf := *bufp
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			*bufp = buf
			return buf, nil
		}
		if err != nil {
			*bufp = buf
			return buf, err
		}
	}
}

// writeAdvice writes a pre-serialized advise response.
func (s *Server) writeAdvice(w http.ResponseWriter, cache string, body []byte) {
	h := w.Header()
	h.Set("X-OpenBI-Cache", cache)
	h.Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// severityVector normalizes an advise request into the full severity vector
// (dq.AllCriteria order), validating shape and range.
func (r adviseRequest) severityVector() ([]float64, error) {
	n := len(dq.AllCriteria())
	if r.Severities != nil && r.Profile != nil {
		return nil, errors.New(`give either "severities" or "profile", not both`)
	}
	out := make([]float64, n)
	switch {
	case r.Severities != nil:
		if len(r.Severities) > n {
			return nil, fmt.Errorf(`"severities" has %d values, want at most %d (dq criteria order)`, len(r.Severities), n)
		}
		copy(out, r.Severities)
	case r.Profile != nil:
		for name, v := range r.Profile {
			c, err := dq.ParseCriterion(name)
			if err != nil {
				return nil, fmt.Errorf("unknown criterion %q", name)
			}
			out[c] = v
		}
	default:
		return nil, errors.New(`request needs "severities" or "profile"`)
	}
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			return nil, fmt.Errorf("severity %q = %v out of range [0,1]", dq.Criterion(i).String(), v)
		}
	}
	return out, nil
}

// ---- POST /v1/profile ----

// profileResponse is the measured data-quality fingerprint of an uploaded
// CSV: raw measures plus the severity vector the advisor consumes (feed it
// straight back into POST /v1/advise).
type profileResponse struct {
	Rows       int                `json:"rows"`
	Attributes int                `json:"attributes"`
	Measures   map[string]float64 `json:"measures"`
	Severities map[string]float64 `json:"severities"`
	Dominant   []string           `json:"dominant"`
}

// profileScratchPool recycles dq measurement scratch across /v1/profile
// requests: steady-state profiling then allocates O(columns) metadata per
// request, not O(cells) temporaries. A Scratch is single-goroutine state,
// so each request checks one out for the duration of the measure call.
var profileScratchPool = sync.Pool{New: func() any { return dq.NewScratch() }}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	s.metrics.profiles.Add(1)
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	tb, err := table.ReadCSV(body, table.ReadCSVOptions{HasHeader: true, Name: "upload"})
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, err)
			return
		}
		s.writeErrorCode(w, http.StatusBadRequest, "bad_csv", err.Error())
		return
	}
	// Measure directly with pooled scratch: /v1/profile reports the DQ
	// profile only, so the CWM catalog BuildModel would also construct is
	// skipped entirely.
	sc := profileScratchPool.Get().(*dq.Scratch)
	p, err := core.ProfileTable(tb, r.URL.Query().Get("class"), sc)
	profileScratchPool.Put(sc)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := profileResponse{
		Rows:       p.Rows,
		Attributes: p.Attributes,
		Measures: map[string]float64{
			"completeness":       p.Completeness,
			"duplicateRatio":     p.DuplicateRatio,
			"meanAbsCorrelation": p.MeanAbsCorrelation,
			"classBalance":       p.ClassBalance,
			"noiseEstimate":      p.NoiseEstimate,
			"outlierRatio":       p.OutlierRatio,
			"dimensionality":     p.Dimensionality,
		},
		Severities: map[string]float64{},
		Dominant:   []string{},
	}
	for _, c := range dq.AllCriteria() {
		resp.Severities[c.String()] = p.Severity(c)
	}
	for _, c := range p.DominantCriteria(0.05) {
		resp.Dominant = append(resp.Dominant, c.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- GET /v1/kb and POST /v1/kb/reload ----

// kbResponse is the snapshot metadata of GET /v1/kb and the reload reply.
type kbResponse struct {
	Generation uint64    `json:"generation"`
	Records    int       `json:"records"`
	Algorithms []string  `json:"algorithms"`
	LoadedAt   time.Time `json:"loadedAt"`
	AgeSeconds float64   `json:"ageSeconds"`
	Source     string    `json:"source"`
	// ManifestRoot and ManifestSigner report the verified provenance of the
	// serving KB: the Merkle root its manifest pins and the hex public key
	// it was signed with. Root without signer means a verified but unsigned
	// manifest; both empty means the generation was published without one.
	ManifestRoot   string `json:"manifestRoot,omitempty"`
	ManifestSigner string `json:"manifestSigner,omitempty"`
}

func (s *Server) kbResponseFor(state *kbState) kbResponse {
	resp := kbResponse{
		Generation: state.gen,
		Records:    state.snap.Len(),
		Algorithms: state.snap.Algorithms(),
		LoadedAt:   state.loadedAt,
		AgeSeconds: s.now().Sub(state.loadedAt).Seconds(),
		Source:     state.source,
	}
	if state.manifest != nil {
		resp.ManifestRoot = state.manifest.MerkleRoot
		resp.ManifestSigner = state.manifest.Signer()
	}
	return resp
}

func (s *Server) handleKB(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.kbResponseFor(s.state.Load()))
}

// reloadRequest optionally overrides the server's configured KB path, or —
// with Shards — names the shard files of one sharded experiment run to
// merge and serve in a single atomic swap (no intermediate kb.json write).
// Path and Shards are mutually exclusive. Manifest names the provenance
// manifest to verify the incoming KB against; plain reloads default to
// <path>.manifest when the file exists, shard reloads verify only when a
// manifest is named (there is no file beside which one could live).
type reloadRequest struct {
	Path     string   `json:"path"`
	Shards   []string `json:"shards"`
	Manifest string   `json:"manifest"`
}

// handleReload atomically swaps in a knowledge base read from disk —
// either one kb.json, or a freshly completed set of shard outputs merged
// on the spot. The engine publishes the new snapshot first, then the
// server publishes a new generation; requests in flight keep the snapshot
// they already pinned, so nothing is dropped or torn mid-reload.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBodyBytes))
	if err != nil {
		s.writeBodyError(w, err)
		return
	}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			s.writeErrorCode(w, http.StatusBadRequest, "bad_request", "decoding request body: "+err.Error())
			return
		}
	}
	if req.Manifest != "" && !s.reloadPathAllowed(req.Manifest) {
		s.writeErrorCode(w, http.StatusForbidden, "path_not_allowed",
			"reload paths must live in the configured KB's directory")
		return
	}
	if len(req.Shards) > 0 {
		if req.Path != "" {
			s.writeErrorCode(w, http.StatusBadRequest, "bad_request",
				`give either "path" or "shards", not both`)
			return
		}
		s.reloadShards(w, req)
		return
	}
	path := req.Path
	if path == "" {
		path = s.kbPath
	}
	if path == "" {
		s.writeErrorCode(w, http.StatusBadRequest, "no_kb_path",
			"no path in request and the server was started without a KB path")
		return
	}
	if !s.reloadPathAllowed(path) {
		s.writeErrorCode(w, http.StatusForbidden, "path_not_allowed",
			"reload paths must live in the configured KB's directory")
		return
	}

	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	doc, err := os.ReadFile(path)
	if err != nil {
		s.writeErrorCode(w, http.StatusBadRequest, "kb_unreadable", err.Error())
		return
	}
	base, err := kb.Load(bytes.NewReader(doc))
	if err != nil {
		s.writeErrorCode(w, http.StatusBadRequest, "bad_kb", err.Error())
		return
	}
	manifestPath, explicit := req.Manifest, req.Manifest != ""
	if !explicit {
		manifestPath = path + ".manifest"
	}
	m, err := s.manifestForReload(doc, base, manifestPath, explicit)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := checkManifestChain(s.state.Load().manifest, m); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.engine.ReplaceKB(base); err != nil {
		s.writeErrorCode(w, http.StatusBadRequest, "bad_kb", err.Error())
		return
	}
	s.publishReload(w, path, m)
}

// manifestForReload loads and fully verifies the provenance manifest of an
// incoming KB: the manifest document itself, every record's leaf hash and
// the Merkle root, the exact artifact bytes, and the signature policy.
// With the manifest file absent it returns (nil, nil) — an unverified
// reload — unless the path was named explicitly or the server requires
// manifests. Callers hold reloadMu.
func (s *Server) manifestForReload(doc []byte, base *kb.KnowledgeBase, manifestPath string, explicit bool) (*provenance.Manifest, error) {
	if _, err := os.Stat(manifestPath); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			if !explicit && !s.manifestRequired {
				return nil, nil
			}
			return nil, fmt.Errorf("server: %w", &oberr.ManifestError{Record: -1,
				Reason: fmt.Sprintf("provenance manifest %s does not exist", manifestPath)})
		}
		return nil, fmt.Errorf("server: %w: %s: %v", oberr.ErrBadManifest, manifestPath, err)
	}
	m, err := provenance.LoadFile(manifestPath)
	if err != nil {
		return nil, kb.WrapManifestError(err)
	}
	if err := kb.VerifyManifest(m, doc, base); err != nil {
		return nil, err
	}
	sigErr := m.VerifySignature(s.manifestKey)
	if errors.Is(sigErr, provenance.ErrUnsigned) && s.manifestKey == nil {
		// Unsigned manifests are allowed (but flagged: GET /v1/kb reports a
		// root with no signer) until the operator pins a key.
		sigErr = nil
	}
	if sigErr != nil {
		return nil, kb.WrapManifestError(sigErr)
	}
	return m, nil
}

// checkManifestChain enforces reload lineage: when both the serving and the
// incoming generation carry manifests, their dataset hash and grid
// fingerprint must agree (where both sides record them) — a KB derived from
// different data or a different experiment grid must not silently replace
// the one being served.
func checkManifestChain(prev, next *provenance.Manifest) error {
	if prev == nil || next == nil {
		return nil
	}
	if prev.DatasetHash != "" && next.DatasetHash != "" && prev.DatasetHash != next.DatasetHash {
		return fmt.Errorf("server: %w", &oberr.ManifestError{Record: -1,
			Reason: fmt.Sprintf("reload breaks the provenance chain: incoming dataset hash %s, serving %s", next.DatasetHash, prev.DatasetHash)})
	}
	if prev.GridFingerprint != "" && next.GridFingerprint != "" && prev.GridFingerprint != next.GridFingerprint {
		return fmt.Errorf("server: %w", &oberr.ManifestError{Record: -1,
			Reason: fmt.Sprintf("reload breaks the provenance chain: incoming grid fingerprint %s, serving %s", next.GridFingerprint, prev.GridFingerprint)})
	}
	return nil
}

// reloadShards loads shard files, merges them (validating that they form
// exactly one complete run) and publishes the merged KB as a new
// generation. The same path confinement as plain reloads applies to every
// shard file. The merged base never touches disk, so manifest verification
// runs over its canonical serialization — byte-identical to the kb.json a
// monolithic run would have written, which is exactly what the manifest
// pins.
func (s *Server) reloadShards(w http.ResponseWriter, req reloadRequest) {
	paths := req.Shards
	for _, p := range paths {
		if !s.reloadPathAllowed(p) {
			s.writeErrorCode(w, http.StatusForbidden, "path_not_allowed",
				"reload paths must live in the configured KB's directory")
			return
		}
	}
	shards := make([]*kb.Shard, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			s.writeErrorCode(w, http.StatusBadRequest, "shard_unreadable", err.Error())
			return
		}
		sh, err := kb.LoadShard(f)
		f.Close()
		if err != nil {
			s.writeErrorCode(w, http.StatusBadRequest, "bad_shard", p+": "+err.Error())
			return
		}
		shards = append(shards, sh)
	}
	merged, err := kb.Merge(shards...)
	if err != nil {
		s.writeErrorCode(w, http.StatusUnprocessableEntity, "shard_mismatch", err.Error())
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	var m *provenance.Manifest
	if req.Manifest != "" || s.manifestRequired {
		if req.Manifest == "" {
			s.writeError(w, fmt.Errorf("server: %w", &oberr.ManifestError{Record: -1,
				Reason: "the server requires a provenance manifest; shard reloads must name one explicitly"}))
			return
		}
		var doc bytes.Buffer
		if err := merged.Save(&doc); err != nil {
			s.writeErrorCode(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		m, err = s.manifestForReload(doc.Bytes(), merged, req.Manifest, true)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if err := checkManifestChain(s.state.Load().manifest, m); err != nil {
			s.writeError(w, err)
			return
		}
	}
	if err := s.engine.ReplaceKB(merged); err != nil {
		s.writeErrorCode(w, http.StatusBadRequest, "bad_kb", err.Error())
		return
	}
	s.publishReload(w, fmt.Sprintf("merge of %d shards", len(shards)), m)
}

// publishReload bumps the serving generation after the engine accepted a
// new KB. Callers hold reloadMu (or are the only writer, as in reload
// paths that just took it).
func (s *Server) publishReload(w http.ResponseWriter, source string, m *provenance.Manifest) {
	prev := s.state.Load()
	next := &kbState{snap: s.engine.KB(), gen: prev.gen + 1, loadedAt: s.now(), source: source, manifest: m}
	s.state.Store(next)
	s.metrics.reloads.Add(1)
	writeJSON(w, http.StatusOK, s.kbResponseFor(next))
}

// ---- GET /v1/metrics and GET /healthz ----

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// healthResponse reports liveness (the process answers) and readiness (a
// non-empty KB is published, so /v1/advise can succeed).
type healthResponse struct {
	Status     string `json:"status"`
	Ready      bool   `json:"ready"`
	Records    int    `json:"records"`
	Generation uint64 `json:"generation"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := s.state.Load()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Ready:      state.snap.Len() > 0,
		Records:    state.snap.Len(),
		Generation: state.gen,
	})
}
