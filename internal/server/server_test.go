package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openbi/internal/core"
	"openbi/internal/eval"
	"openbi/internal/kb"
)

// testKB builds a hand-crafted knowledge base over the given algorithms.
// Baselines descend in argument order (first argument is the best clean
// algorithm) and every algorithm degrades under label noise, the later
// ones faster — so rankings react to severities and are fully predictable.
func testKB(algorithms ...string) *kb.KnowledgeBase {
	k := kb.New()
	for i, alg := range algorithms {
		base := 0.9 - 0.1*float64(i)
		k.Add(kb.Record{
			Algorithm: alg, Criterion: "clean", Severity: 0,
			MeasuredAll: map[string]float64{"label-noise": 0, "completeness": 0},
			Dataset:     "unit", Folds: 3,
			Metrics: eval.Metrics{Kappa: base, Accuracy: (base + 1) / 2},
		})
		for _, sev := range []float64{0.2, 0.4} {
			drop := sev * float64(i+1) // later algorithms are more fragile
			k.Add(kb.Record{
				Algorithm: alg, Criterion: "label-noise", Severity: sev,
				MeasuredSeverity: sev, Dataset: "unit", Folds: 3,
				Metrics: eval.Metrics{Kappa: base - drop, Accuracy: (base - drop + 1) / 2},
			})
		}
	}
	return k
}

// newTestEngine returns an engine serving base (nil = empty KB).
func newTestEngine(t *testing.T, base *kb.KnowledgeBase) *core.Engine {
	t.Helper()
	eng, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	if base != nil {
		var buf bytes.Buffer
		if err := base.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadKB(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// newTestServer builds a server over a 2-algorithm KB with immediate
// batching (no added latency) unless opts override.
func newTestServer(t *testing.T, base *kb.KnowledgeBase, opts ...Option) *Server {
	t.Helper()
	srv, err := New(newTestEngine(t, base), append([]Option{WithBatchWindow(0)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// do drives one request through the full handler stack.
func do(srv *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

// decode unmarshals a recorder body, failing the test on bad JSON.
func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

// errCode extracts the machine-readable code of an error envelope.
func errCode(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	return decode[errorBody](t, w).Error.Code
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t, testKB("alpha", "beta"))
	w := do(srv, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	h := decode[healthResponse](t, w)
	if h.Status != "ok" || !h.Ready || h.Records != 6 || h.Generation != 0 {
		t.Fatalf("health = %+v", h)
	}

	empty := newTestServer(t, nil)
	h = decode[healthResponse](t, do(empty, "GET", "/healthz", ""))
	if !strings.EqualFold(h.Status, "ok") || h.Ready || h.Records != 0 {
		t.Fatalf("empty health = %+v", h)
	}
}

func TestAdviseRanksByCleanBaseline(t *testing.T) {
	srv := newTestServer(t, testKB("alpha", "beta"))
	w := do(srv, "POST", "/v1/advise", `{"severities": [0,0,0,0,0,0,0]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", w.Code, w.Body.String())
	}
	resp := decode[adviseResponse](t, w)
	if len(resp.Advice.Ranked) != 2 || resp.Advice.Ranked[0].Algorithm != "alpha" {
		t.Fatalf("ranked = %+v", resp.Advice.Ranked)
	}
	if resp.KB.Generation != 0 || resp.KB.Records != 6 || resp.KB.Source != "engine" {
		t.Fatalf("kb meta = %+v", resp.KB)
	}
	if got := w.Header().Get("X-OpenBI-Cache"); got != "miss" {
		t.Fatalf("cache header = %q", got)
	}
}

func TestAdviseSeverityFlipsRanking(t *testing.T) {
	srv := newTestServer(t, testKB("alpha", "beta"))
	// beta loses 2x kappa per unit label-noise; at 0.4 alpha keeps the lead
	// only if the curves are actually interpolated — beta starts higher? No:
	// alpha starts higher (0.9 vs 0.8) AND degrades slower, so check the
	// named-profile form flips nothing but shifts predictions down.
	clean := decode[adviseResponse](t, do(srv, "POST", "/v1/advise", `{"severities": []}`))
	noisy := decode[adviseResponse](t, do(srv, "POST", "/v1/advise", `{"profile": {"label-noise": 0.4}}`))
	if noisy.Advice.Ranked[0].PredictedKappa >= clean.Advice.Ranked[0].PredictedKappa {
		t.Fatalf("label noise did not lower the prediction: clean %v noisy %v",
			clean.Advice.Ranked[0], noisy.Advice.Ranked[0])
	}
	gapClean := clean.Advice.Ranked[0].PredictedKappa - clean.Advice.Ranked[1].PredictedKappa
	gapNoisy := noisy.Advice.Ranked[0].PredictedKappa - noisy.Advice.Ranked[1].PredictedKappa
	if gapNoisy <= gapClean {
		t.Fatalf("fragile runner-up should fall further: gap clean %.3f noisy %.3f", gapClean, gapNoisy)
	}
	if len(noisy.Advice.Dominant) == 0 || noisy.Advice.Dominant[0] != "label-noise" {
		t.Fatalf("dominant = %v", noisy.Advice.Dominant)
	}
}

func TestAdviseValidation(t *testing.T) {
	srv := newTestServer(t, testKB("alpha", "beta"))
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"no fields", `{}`},
		{"both fields", `{"severities": [0.1], "profile": {"label-noise": 0.1}}`},
		{"too long", `{"severities": [0,0,0,0,0,0,0,0]}`},
		{"out of range", `{"severities": [1.5]}`},
		{"negative", `{"severities": [-0.1]}`},
		{"unknown criterion", `{"profile": {"sparkle": 0.2}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(srv, "POST", "/v1/advise", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d body = %s", w.Code, w.Body.String())
			}
			if code := errCode(t, w); code != "bad_request" {
				t.Fatalf("code = %q", code)
			}
		})
	}
}

func TestPayloadTooLarge(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"), WithMaxBodyBytes(64))
	big := `{"severities": [0.10000000, 0.20000000, 0.30000000, 0.40000000, 0]}`
	if len(big) <= 64 {
		t.Fatalf("test body must exceed the cap, has %d bytes", len(big))
	}
	w := do(srv, "POST", "/v1/advise", big)
	if w.Code != http.StatusRequestEntityTooLarge || errCode(t, w) != "payload_too_large" {
		t.Fatalf("advise: status = %d body = %s", w.Code, w.Body.String())
	}
	w = do(srv, "POST", "/v1/profile", strings.Repeat(profileCSV, 3))
	if w.Code != http.StatusRequestEntityTooLarge || errCode(t, w) != "payload_too_large" {
		t.Fatalf("profile: status = %d body = %s", w.Code, w.Body.String())
	}
}

func TestAdviseEmptyKB(t *testing.T) {
	srv := newTestServer(t, nil)
	w := do(srv, "POST", "/v1/advise", `{"severities": [0.2]}`)
	if w.Code != http.StatusServiceUnavailable || errCode(t, w) != "empty_kb" {
		t.Fatalf("status = %d code = %s", w.Code, w.Body.String())
	}
}

func TestAdviseAfterClose(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"))
	srv.Close()
	w := do(srv, "POST", "/v1/advise", `{"severities": [0.2]}`)
	if w.Code != http.StatusServiceUnavailable || errCode(t, w) != "server_closed" {
		t.Fatalf("status = %d body = %s", w.Code, w.Body.String())
	}
}

func TestMethodAndPathErrors(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"))
	if w := do(srv, "GET", "/v1/advise", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET advise status = %d", w.Code)
	}
	if w := do(srv, "DELETE", "/v1/kb", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE kb status = %d", w.Code)
	}
	if w := do(srv, "GET", "/v1/nope", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", w.Code)
	}
}

const profileCSV = `a,b,class
1,x,yes
2,y,no
3,x,yes
4,,no
5,y,yes
6,x,no
`

func TestProfileCSV(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"))
	w := do(srv, "POST", "/v1/profile?class=class", profileCSV)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", w.Code, w.Body.String())
	}
	p := decode[profileResponse](t, w)
	if p.Rows != 6 || p.Attributes != 2 {
		t.Fatalf("profile = %+v", p)
	}
	if _, ok := p.Severities["completeness"]; !ok {
		t.Fatalf("severities = %v", p.Severities)
	}
	if p.Severities["completeness"] <= 0 {
		t.Fatal("the missing b cell must show up as completeness severity")
	}
}

func TestProfileErrors(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"))
	w := do(srv, "POST", "/v1/profile?class=absent", profileCSV)
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "column_not_found" {
		t.Fatalf("missing class: status = %d body = %s", w.Code, w.Body.String())
	}
	w = do(srv, "POST", "/v1/profile", "a,b\n\"unclosed")
	if w.Code != http.StatusBadRequest || errCode(t, w) != "bad_csv" {
		t.Fatalf("bad csv: status = %d body = %s", w.Code, w.Body.String())
	}
	w = do(srv, "POST", "/v1/profile", "")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("empty csv: status = %d", w.Code)
	}
}

func TestKBEndpoint(t *testing.T) {
	srv := newTestServer(t, testKB("alpha", "beta"))
	resp := decode[kbResponse](t, do(srv, "GET", "/v1/kb", ""))
	if resp.Generation != 0 || resp.Records != 6 || resp.Source != "engine" {
		t.Fatalf("kb = %+v", resp)
	}
	if len(resp.Algorithms) != 2 || resp.Algorithms[0] != "alpha" {
		t.Fatalf("algorithms = %v", resp.Algorithms)
	}
	if resp.AgeSeconds < 0 {
		t.Fatalf("age = %v", resp.AgeSeconds)
	}
}

// writeKBFile saves a knowledge base under dir and returns its path.
func writeKBFile(t *testing.T, dir, name string, base *kb.KnowledgeBase) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := base.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReloadSwapsGenerations(t *testing.T) {
	dir := t.TempDir()
	next := writeKBFile(t, dir, "next.json", testKB("gamma", "delta", "epsilon"))
	srv := newTestServer(t, testKB("alpha", "beta"))

	before := decode[adviseResponse](t, do(srv, "POST", "/v1/advise", `{"severities": [0.1]}`))
	if before.KB.Generation != 0 {
		t.Fatalf("gen before = %d", before.KB.Generation)
	}

	w := do(srv, "POST", "/v1/kb/reload", `{"path": "`+next+`"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("reload status = %d body = %s", w.Code, w.Body.String())
	}
	re := decode[kbResponse](t, w)
	if re.Generation != 1 || re.Records != 9 || re.Source != next {
		t.Fatalf("reload = %+v", re)
	}
	if len(re.Algorithms) != 3 || re.Algorithms[0] != "delta" {
		t.Fatalf("algorithms = %v", re.Algorithms)
	}

	after := decode[adviseResponse](t, do(srv, "POST", "/v1/advise", `{"severities": [0.1]}`))
	if after.KB.Generation != 1 || len(after.Advice.Ranked) != 3 {
		t.Fatalf("advise after reload = %+v", after.KB)
	}
	if got := do(srv, "GET", "/healthz", ""); decode[healthResponse](t, got).Generation != 1 {
		t.Fatal("healthz should report the new generation")
	}
}

func TestReloadDefaultPath(t *testing.T) {
	dir := t.TempDir()
	path := writeKBFile(t, dir, "kb.json", testKB("alpha"))
	srv := newTestServer(t, nil, WithKBPath(path))
	if w := do(srv, "POST", "/v1/kb/reload", ""); w.Code != http.StatusOK {
		t.Fatalf("reload status = %d body = %s", w.Code, w.Body.String())
	}
	// The previously empty KB now serves advice.
	if w := do(srv, "POST", "/v1/advise", `{"severities": [0]}`); w.Code != http.StatusOK {
		t.Fatalf("advise after default reload = %d", w.Code)
	}
}

func TestReloadErrors(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testKB("alpha"))

	w := do(srv, "POST", "/v1/kb/reload", "")
	if w.Code != http.StatusBadRequest || errCode(t, w) != "no_kb_path" {
		t.Fatalf("no path: status = %d body = %s", w.Code, w.Body.String())
	}
	w = do(srv, "POST", "/v1/kb/reload", `{"path": "`+filepath.Join(dir, "absent.json")+`"}`)
	if w.Code != http.StatusBadRequest || errCode(t, w) != "kb_unreadable" {
		t.Fatalf("absent: status = %d body = %s", w.Code, w.Body.String())
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	w = do(srv, "POST", "/v1/kb/reload", `{"path": "`+bad+`"}`)
	if w.Code != http.StatusBadRequest || errCode(t, w) != "bad_kb" {
		t.Fatalf("bad kb: status = %d body = %s", w.Code, w.Body.String())
	}
	w = do(srv, "POST", "/v1/kb/reload", `{broken`)
	if w.Code != http.StatusBadRequest || errCode(t, w) != "bad_request" {
		t.Fatalf("bad body: status = %d body = %s", w.Code, w.Body.String())
	}
	// Failed reloads must not advance the generation.
	if g := decode[kbResponse](t, do(srv, "GET", "/v1/kb", "")).Generation; g != 0 {
		t.Fatalf("generation after failed reloads = %d", g)
	}
}

func TestReloadPathConfinement(t *testing.T) {
	dir := t.TempDir()
	configured := writeKBFile(t, dir, "kb.json", testKB("alpha"))
	sibling := writeKBFile(t, dir, "kb-v2.json", testKB("beta", "gamma"))
	outside := writeKBFile(t, t.TempDir(), "kb.json", testKB("delta"))
	srv := newTestServer(t, nil, WithKBPath(configured))

	w := do(srv, "POST", "/v1/kb/reload", `{"path": "`+outside+`"}`)
	if w.Code != http.StatusForbidden || errCode(t, w) != "path_not_allowed" {
		t.Fatalf("outside path: status = %d body = %s", w.Code, w.Body.String())
	}
	if w := do(srv, "POST", "/v1/kb/reload", `{"path": "`+sibling+`"}`); w.Code != http.StatusOK {
		t.Fatalf("sibling path: status = %d body = %s", w.Code, w.Body.String())
	}
}

func TestRefreshPublishesEngineKB(t *testing.T) {
	eng := newTestEngine(t, nil)
	srv, err := New(eng, WithBatchWindow(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if w := do(srv, "POST", "/v1/advise", `{"severities": [0.1]}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty engine should 503, got %d", w.Code)
	}

	// The embedder populates the engine in-process; without Refresh the
	// server would keep serving the pinned empty generation.
	var buf bytes.Buffer
	if err := testKB("alpha", "beta").Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadKB(&buf); err != nil {
		t.Fatal(err)
	}
	srv.Refresh()

	w := do(srv, "POST", "/v1/advise", `{"severities": [0.1]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("advise after Refresh: %d body = %s", w.Code, w.Body.String())
	}
	resp := decode[adviseResponse](t, w)
	if resp.KB.Generation != 1 || resp.KB.Records != 6 || resp.KB.Source != "engine" {
		t.Fatalf("kb meta = %+v", resp.KB)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, testKB("alpha", "beta"))
	do(srv, "POST", "/v1/advise", `{"severities": [0.3]}`)
	do(srv, "POST", "/v1/advise", `{"severities": [0.3]}`)
	do(srv, "POST", "/v1/profile?class=class", profileCSV)
	do(srv, "POST", "/v1/advise", `{`) // error response

	m := decode[MetricsSnapshot](t, do(srv, "GET", "/v1/metrics", ""))
	if m.Requests < 5 || m.Advises != 3 || m.Profiles != 1 || m.Errors != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.CacheHitRate != 0.5 {
		t.Fatalf("cache metrics = %+v", m)
	}
	if m.Batches < 1 || m.BatchedJobs < 1 || m.MeanBatchSize <= 0 {
		t.Fatalf("batch metrics = %+v", m)
	}
	if m.KBRecords != 6 || m.KBAgeSeconds < 0 {
		t.Fatalf("kb metrics = %+v", m)
	}
}

func TestOptionValidation(t *testing.T) {
	eng := newTestEngine(t, nil)
	cases := []struct {
		name string
		opts []Option
	}{
		{"negative cache", []Option{WithCacheSize(-1)}},
		{"zero batch max", []Option{WithBatchMaxSize(0)}},
		{"negative window", []Option{WithBatchWindow(-time.Millisecond)}},
		{"zero timeout", []Option{WithRequestTimeout(0)}},
		{"zero drain", []Option{WithDrainTimeout(0)}},
		{"zero body cap", []Option{WithMaxBodyBytes(0)}},
	}
	for _, tc := range cases {
		if _, err := New(eng, tc.opts...); err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
	}
	if _, err := New(nil); err == nil {
		t.Fatal("nil engine: want error")
	}
}
