package server

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowAdmissionServer builds a server whose advise path reliably occupies
// its admission slot for ~window: the cache is disabled (every request
// scores) and the batch window adds a fixed dwell inside the gate.
func slowAdmissionServer(t *testing.T, window time.Duration, maxInflight, queueDepth int) *Server {
	t.Helper()
	srv, err := New(newTestEngine(t, testKB("alpha", "beta")),
		WithCacheSize(0),
		WithBatchWindow(window),
		WithMaxInflight(maxInflight),
		WithQueueDepth(queueDepth),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// adviseBody returns a unique, valid advise request per sequence number, so
// no layer can serve two concurrent requests from one cache entry.
func adviseBody(i int) string {
	return fmt.Sprintf(`{"severities": [0.%02d,0,0,0,0,0,0]}`, i%100)
}

// burst fires n concurrent advises from a common barrier and returns the
// status-code tally plus the Retry-After values seen on 429s.
func burst(srv *Server, n int) (codes map[int]int, retryAfter []string) {
	var mu sync.Mutex
	codes = make(map[int]int)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			w := do(srv, "POST", "/v1/advise", adviseBody(i))
			mu.Lock()
			defer mu.Unlock()
			codes[w.Code]++
			if w.Code == http.StatusTooManyRequests {
				retryAfter = append(retryAfter, w.Header().Get("Retry-After"))
			}
		}(i)
	}
	close(start)
	wg.Wait()
	return codes, retryAfter
}

func TestAdmissionShedsPastBudgetWithRetryAfter(t *testing.T) {
	// 2 slots + 1 queue position against 10 simultaneous requests: exactly
	// 3 must eventually succeed and 7 must shed — the semaphore makes the
	// split exact as long as the burst lands within one service time, which
	// the 150ms batch dwell guarantees by orders of magnitude.
	srv := slowAdmissionServer(t, 150*time.Millisecond, 2, 1)
	codes, retryAfter := burst(srv, 10)
	if codes[http.StatusOK] != 3 || codes[http.StatusTooManyRequests] != 7 {
		t.Fatalf("codes = %v, want 3x200 and 7x429", codes)
	}
	for _, ra := range retryAfter {
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 60 {
			t.Fatalf("Retry-After = %q, want integer seconds in [1,60]", ra)
		}
	}
	m := srv.Metrics()
	if m.MaxInflight != 2 || m.QueueDepth != 1 {
		t.Fatalf("budget gauges = %d/%d", m.MaxInflight, m.QueueDepth)
	}
	if m.Admitted != 3 || m.Shed != 7 {
		t.Fatalf("admitted/shed = %d/%d, want 3/7", m.Admitted, m.Shed)
	}
	if m.Inflight != 0 || m.Queued != 0 {
		t.Fatalf("gauges not drained: inflight %d queued %d", m.Inflight, m.Queued)
	}
}

func TestQueueingStaysBoundedUnderSaturation(t *testing.T) {
	srv := slowAdmissionServer(t, 200*time.Millisecond, 1, 2)
	var peakQueued, peakInflight int64
	stop := make(chan struct{})
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := srv.Metrics()
			if m.Queued > peakQueued {
				peakQueued = m.Queued
			}
			if m.Inflight > peakInflight {
				peakInflight = m.Inflight
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	codes, _ := burst(srv, 12)
	close(stop)
	pollWg.Wait()
	if codes[http.StatusOK] != 3 { // 1 slot + 2 queue positions
		t.Fatalf("codes = %v, want exactly 3 successes", codes)
	}
	if peakInflight > 1 || peakQueued > 2 {
		t.Fatalf("budgets exceeded: peak inflight %d (max 1), peak queued %d (max 2)",
			peakInflight, peakQueued)
	}
}

func TestControlPlaneLiveUnderOverload(t *testing.T) {
	// While the data plane is saturated and shedding, healthz and metrics
	// must keep answering: overload must not take out observability.
	srv := slowAdmissionServer(t, 300*time.Millisecond, 1, 0)
	holder := make(chan struct{})
	go func() {
		defer close(holder)
		do(srv, "POST", "/v1/advise", adviseBody(1))
	}()
	// Wait for the holder to occupy the slot.
	for i := 0; srv.Metrics().Inflight == 0; i++ {
		if i > 1000 {
			t.Fatal("slot never occupied")
		}
		time.Sleep(time.Millisecond)
	}

	w := do(srv, "POST", "/v1/advise", adviseBody(2))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated advise = %d, want 429", w.Code)
	}
	if code := errCode(t, w); code != "overloaded" {
		t.Fatalf("shed error code = %q, want overloaded", code)
	}
	if w := do(srv, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz under overload = %d", w.Code)
	}
	mw := do(srv, "GET", "/v1/metrics", "")
	if mw.Code != http.StatusOK {
		t.Fatalf("metrics under overload = %d", mw.Code)
	}
	m := decode[MetricsSnapshot](t, mw)
	if m.Inflight != 1 || m.Shed == 0 {
		t.Fatalf("metrics under overload = inflight %d shed %d", m.Inflight, m.Shed)
	}
	<-holder
}

func TestGracefulDrainWithQueuedRequests(t *testing.T) {
	// Close while requests sit in the admission queue: the queued waiters
	// must fail fast with server_closed, not hang out the request timeout.
	srv := slowAdmissionServer(t, 250*time.Millisecond, 1, 4)
	type outcome struct {
		code int
		body string
	}
	results := make(chan outcome, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			w := do(srv, "POST", "/v1/advise", adviseBody(i))
			results <- outcome{w.Code, w.Body.String()}
		}(i)
	}
	// Wait until one request holds the slot and two are queued.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m := srv.Metrics()
		if m.Inflight == 1 && m.Queued == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 1 inflight + 2 queued: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	srv.Close()
	var closed int
	for i := 0; i < 3; i++ {
		o := <-results
		switch o.code {
		case http.StatusServiceUnavailable:
			closed++
		case http.StatusOK:
			// the slot holder may have been scored before the dispatcher saw
			// Close; that is the graceful part of the drain
		default:
			t.Fatalf("unexpected status %d body %s", o.code, o.body)
		}
	}
	if closed < 2 {
		t.Fatalf("%d requests got server_closed, want the 2 queued ones at least", closed)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("drain took %v, queued waiters did not fail fast", waited)
	}
}

func TestNoGoroutineLeakAfterOverload(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := slowAdmissionServer(t, 100*time.Millisecond, 2, 1)
	for round := 0; round < 3; round++ {
		burst(srv, 8)
	}
	srv.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: before %d, after %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConcurrentReloadDuringShed(t *testing.T) {
	// Hammer a tiny admission budget while the KB generation churns
	// underneath: every response must still be a well-formed 200 or 429.
	// Run under -race (make race) this doubles as the reload/shed data-race
	// probe.
	srv := slowAdmissionServer(t, 20*time.Millisecond, 1, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var got200, got429, other atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				switch w := do(srv, "POST", "/v1/advise", adviseBody(i*50+n)); w.Code {
				case http.StatusOK:
					got200.Add(1)
				case http.StatusTooManyRequests:
					got429.Add(1)
				default:
					other.Add(1)
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.Refresh() // republish the engine KB: a new generation
				do(srv, "GET", "/v1/metrics", "")
			}
		}
	}()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("unexpected statuses during reload/shed churn: %d", other.Load())
	}
	if got200.Load() == 0 || got429.Load() == 0 {
		t.Fatalf("want both outcomes exercised: 200s=%d 429s=%d", got200.Load(), got429.Load())
	}
}

func TestMetricsEndpointLatencyDistributions(t *testing.T) {
	srv := newTestServer(t, testKB("alpha", "beta"))
	for i := 0; i < 20; i++ {
		if w := do(srv, "POST", "/v1/advise", adviseBody(i)); w.Code != http.StatusOK {
			t.Fatalf("advise %d = %d", i, w.Code)
		}
	}
	m := decode[MetricsSnapshot](t, do(srv, "GET", "/v1/metrics", ""))
	ep, ok := m.Endpoints["advise"]
	if !ok {
		t.Fatalf("no advise endpoint stats: %+v", m.Endpoints)
	}
	if ep.Count != 20 {
		t.Fatalf("advise count = %d, want 20", ep.Count)
	}
	if ep.P50Ms <= 0 || ep.P99Ms < ep.P50Ms || ep.P999Ms < ep.P99Ms || ep.MaxMs < ep.P999Ms {
		t.Fatalf("advise quantiles not ordered: %+v", ep)
	}
	// The gate is off by default: gauges must read disabled, not garbage.
	if m.MaxInflight != 0 || m.Shed != 0 {
		t.Fatalf("admission gauges with gate disabled: %+v", m)
	}
}
