package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"openbi/internal/rdf"
	"openbi/internal/synth"
)

// lodNTBody serializes a small synthetic LOD graph as N-Triples.
func lodNTBody(t *testing.T) string {
	t.Helper()
	g, err := synth.MunicipalBudgetLOD(synth.LODSpec{Entities: 30, Seed: 4, Dirtiness: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestLODProfileNTriples(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"))
	w := do(srv, "POST", "/v1/lod/profile", lodNTBody(t))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", w.Code, w.Body.String())
	}
	resp := decode[lodProfileResponse](t, w)
	if resp.Triples == 0 || resp.Entities == 0 {
		t.Fatalf("profile = %+v", resp)
	}
	if _, ok := resp.Measures["danglingLinkRatio"]; !ok {
		t.Fatalf("measures = %v", resp.Measures)
	}
	if resp.Measures["sameAsRatio"] <= 0 {
		t.Fatal("a dirty graph must show sameAs mirrors")
	}
	if resp.Projection.Class != "http://opendata.example.org/def/Municipality" || resp.Projection.Rows == 0 {
		t.Fatalf("projection preview = %+v", resp.Projection)
	}
	if got := srv.Metrics().LODProfiles; got != 1 {
		t.Fatalf("lodProfiles counter = %d", got)
	}
}

func TestLODProfileTurtle(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"))
	doc := "@prefix ex: <http://ex.org/> .\nex:a a ex:C ; ex:p 1 .\nex:b a ex:C ; ex:p 2 .\n"
	for _, req := range []struct{ path, contentType string }{
		{"/v1/lod/profile?format=ttl", ""},
		{"/v1/lod/profile", "text/turtle"},
		{"/v1/lod/profile", "text/turtle; charset=utf-8"},
	} {
		r := httptest.NewRequest("POST", req.path, strings.NewReader(doc))
		if req.contentType != "" {
			r.Header.Set("Content-Type", req.contentType)
		}
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("%+v: status = %d body = %s", req, w.Code, w.Body.String())
		}
		resp := decode[lodProfileResponse](t, w)
		if resp.Entities != 2 || resp.Projection.Rows != 2 {
			t.Fatalf("%+v: profile = %+v", req, resp)
		}
	}
}

func TestLODProfileClassOverride(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"))
	w := do(srv, "POST", "/v1/lod/profile?class=http://opendata.example.org/def/Region", lodNTBody(t))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", w.Code, w.Body.String())
	}
	resp := decode[lodProfileResponse](t, w)
	if resp.Projection.Class != "http://opendata.example.org/def/Region" {
		t.Fatalf("projection = %+v", resp.Projection)
	}
}

// TestLODProfileClasslessGraph: with no rdf:type triples, every subject
// projects and the class field is omitted rather than faking one.
func TestLODProfileClasslessGraph(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"))
	doc := "<http://e/a> <http://p/x> \"1\" .\n<http://e/b> <http://p/x> \"2\" .\n"
	w := do(srv, "POST", "/v1/lod/profile", doc)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", w.Code, w.Body.String())
	}
	resp := decode[lodProfileResponse](t, w)
	if resp.Projection.Class != "" || resp.Projection.Rows != 2 {
		t.Fatalf("projection = %+v", resp.Projection)
	}
	if !strings.Contains(w.Body.String(), `"projection":{"rows"`) {
		t.Fatalf("class should be omitted from JSON: %s", w.Body.String())
	}
}

func TestLODProfileErrors(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"))

	w := do(srv, "POST", "/v1/lod/profile", "this is not rdf\n")
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "bad_syntax" {
		t.Fatalf("bad rdf: status = %d body = %s", w.Code, w.Body.String())
	}

	w = do(srv, "POST", "/v1/lod/profile?format=jsonld", lodNTBody(t))
	if w.Code != http.StatusUnsupportedMediaType || errCode(t, w) != "unsupported_format" {
		t.Fatalf("unknown format: status = %d body = %s", w.Code, w.Body.String())
	}

	r := httptest.NewRequest("POST", "/v1/lod/profile", strings.NewReader(lodNTBody(t)))
	r.Header.Set("Content-Type", "application/json")
	w2 := httptest.NewRecorder()
	srv.ServeHTTP(w2, r)
	if w2.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("unknown content type: status = %d body = %s", w2.Code, w2.Body.String())
	}

	w = do(srv, "POST", "/v1/lod/profile", "")
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "too_few_rows" {
		t.Fatalf("empty body: status = %d body = %s", w.Code, w.Body.String())
	}

	w = do(srv, "GET", "/v1/lod/profile", "")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status = %d", w.Code)
	}
}

// TestLODProfileBodyCap: the streamed body honours WithMaxBodyBytes with
// the standard 413 payload_too_large envelope, like every other endpoint.
func TestLODProfileBodyCap(t *testing.T) {
	srv := newTestServer(t, testKB("alpha"), WithMaxBodyBytes(64))
	w := do(srv, "POST", "/v1/lod/profile", lodNTBody(t))
	if w.Code != http.StatusRequestEntityTooLarge || errCode(t, w) != "payload_too_large" {
		t.Fatalf("status = %d body = %s", w.Code, w.Body.String())
	}
}
