package server

import (
	"container/list"
	"strconv"
	"sync"
)

// quantum is the severity quantization step for cache keys. Two profiles
// whose severities round to the same 0.01 grid get the same advice entry:
// well below the resolution of the knowledge base's degradation curves, so
// quantization never changes a ranking, only collapses near-identical
// queries onto one cache line.
const quantum = 0.01

// rawKeyMaxBody caps the bodies eligible for exact-body caching. Real
// advise requests are well under 100 bytes; without a cap, byte-distinct
// megabyte bodies could each pin a ~1 MiB key string in the entry-bounded
// LRU (a memory-amplification vector) while evicting useful entries.
const rawKeyMaxBody = 512

// rawKey builds the exact-body cache key: one KB generation plus the
// request bytes verbatim. It lets a repeated identical request skip JSON
// decoding entirely — the level-1 fast path in front of the quantized
// severity key. The 'r' prefix keeps the two key families disjoint.
func rawKey(gen uint64, body []byte) string {
	b := make([]byte, 0, len(body)+22)
	b = append(b, 'r')
	b = strconv.AppendUint(b, gen, 10)
	b = append(b, ':')
	b = append(b, body...)
	return string(b)
}

// adviseKey builds the cache key for a severity vector under one KB
// generation. Keys from different generations never collide, so a reload
// implicitly invalidates the whole cache without touching it.
func adviseKey(gen uint64, severities []float64) string {
	b := make([]byte, 0, 2+len(severities)*4+20)
	b = strconv.AppendUint(b, gen, 10)
	for _, s := range severities {
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(s/quantum+0.5), 10)
	}
	return string(b)
}

// adviceCache is a plain mutex-guarded LRU over serialized advise
// responses. Values are the exact bytes written to the wire, so a hit costs
// one map lookup, one list move and one write — no scoring, no JSON
// encoding.
type adviceCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recent
	items map[string]*list.Element // key -> *entry element
}

type cacheEntry struct {
	key  string
	body []byte
}

// newAdviceCache returns an LRU holding up to max entries; max == 0
// disables the cache (get always misses, put is a no-op).
func newAdviceCache(max int) *adviceCache {
	return &adviceCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached body for key, marking it most recently used.
func (c *adviceCache) get(key string) ([]byte, bool) {
	if c.max == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// the cache is full. It returns the number of evictions (0 or 1).
func (c *adviceCache) put(key string, body []byte) int {
	if c.max == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return 0
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	if c.ll.Len() <= c.max {
		return 0
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	delete(c.items, oldest.Value.(*cacheEntry).key)
	return 1
}

// len returns the current entry count.
func (c *adviceCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
