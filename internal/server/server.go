// Package server exposes an OpenBI Engine as an HTTP/JSON advice service —
// the network front end of the paper's advisor: non-expert BI users POST a
// data-quality profile (or a raw CSV) and get back "the best option is
// ALGORITHM X" as structured JSON.
//
// The server is built around the engine's snapshot architecture:
//
//   - Every request pins exactly one immutable kb.Snapshot, so reads are
//     lock-free and a response is always internally consistent, even while
//     a POST /v1/kb/reload atomically swaps in a new knowledge base.
//   - Concurrent POST /v1/advise calls are micro-batched: requests that
//     arrive within one batching window are scored together in a single
//     pass over one pinned snapshot, and duplicate profiles inside a batch
//     are computed once.
//   - An LRU cache keyed by (KB generation, quantized severity vector)
//     short-circuits repeated queries with the exact serialized response.
//   - Admission control (WithMaxInflight / WithQueueDepth) bounds the
//     heavy endpoints: excess load is shed fast with 429 overloaded +
//     Retry-After instead of queuing unboundedly, while /healthz and
//     /v1/metrics stay responsive so an overloaded server remains
//     observable. Per-endpoint log-bucketed latency histograms back the
//     p50/p99 estimates in GET /v1/metrics.
//
// Endpoints:
//
//	POST /v1/advise     {"severities": [...]} or {"profile": {"label-noise": 0.2}} → ranked advice
//	POST /v1/profile    CSV body (+ ?class=col) → data-quality profile
//	GET  /v1/kb         knowledge-base snapshot metadata
//	POST /v1/kb/reload  atomically load a new KB from disk, no dropped requests
//	GET  /v1/metrics    counters + admission gauges + per-endpoint latency quantiles (JSON)
//	GET  /healthz       liveness + readiness
//
// Typed pipeline errors (internal/oberr) map onto HTTP statuses; see
// httperr.go for the table.
package server

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"openbi/internal/core"
	"openbi/internal/hist"
	"openbi/internal/kb"
	"openbi/internal/oberr"
	"openbi/internal/provenance"
)

// kbState is one published knowledge-base generation: the pinned snapshot
// plus the serving metadata that travels with it. A kbState is immutable;
// reloads publish a fresh one through an atomic pointer.
type kbState struct {
	snap     *kb.Snapshot
	gen      uint64
	loadedAt time.Time
	source   string
	// manifest is the verified provenance manifest of the serving KB, nil
	// when the generation was published without one (engine-sourced
	// snapshots, unverified reloads). Chained reloads compare the incoming
	// manifest's lineage fields against it.
	manifest *provenance.Manifest
}

// Server serves advice over HTTP from an Engine. Create one with New; a
// Server is an http.Handler, so it can be mounted into a larger mux, driven
// by httptest, or run directly with ListenAndServe. Close releases the
// batching goroutine when the server is not run via ListenAndServe/Serve.
type Server struct {
	engine *core.Engine
	mux    *http.ServeMux

	state    atomic.Pointer[kbState]
	reloadMu sync.Mutex // serializes /v1/kb/reload swaps

	cache   *adviceCache
	metrics *metrics

	// admission gates the heavy endpoints (nil = unbounded, the default);
	// latency holds one log-bucketed histogram per endpoint, fed by the
	// instrument middleware and read by GET /v1/metrics.
	admission *admission
	latency   map[string]*hist.Histogram

	kbPath       string
	reqTimeout   time.Duration
	drainTimeout time.Duration
	maxBodyBytes int64

	manifestRequired bool
	manifestKey      ed25519.PublicKey

	batchWindow time.Duration
	batchMax    int
	jobs        chan *adviseJob
	done        chan struct{}
	closeOnce   sync.Once

	now func() time.Time
}

// Option configures a Server at construction time.
type Option func(*config)

type config struct {
	kbPath       string
	cacheSize    int
	batchWindow  time.Duration
	batchMax     int
	reqTimeout   time.Duration
	drainTimeout time.Duration
	maxBodyBytes int64
	maxInflight  int
	queueDepth   int
	now          func() time.Time

	manifestRequired bool
	manifestKey      ed25519.PublicKey
	manifest         *provenance.Manifest
}

// WithKBPath sets the default knowledge-base file POST /v1/kb/reload reads
// when the request body names no path.
func WithKBPath(path string) Option {
	return func(c *config) { c.kbPath = path }
}

// WithCacheSize bounds the advice LRU cache (entries). 0 disables caching;
// the default is 1024.
func WithCacheSize(n int) Option {
	return func(c *config) { c.cacheSize = n }
}

// WithBatchWindow sets how long the dispatcher waits to coalesce concurrent
// advise calls into one scoring pass (default 2ms). 0 batches only what is
// already queued, adding no latency.
func WithBatchWindow(d time.Duration) Option {
	return func(c *config) { c.batchWindow = d }
}

// WithBatchMaxSize caps one scoring batch (default 64).
func WithBatchMaxSize(n int) Option {
	return func(c *config) { c.batchMax = n }
}

// WithRequestTimeout bounds how long an advise call may wait for its
// scoring batch (default 10s).
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.reqTimeout = d }
}

// WithDrainTimeout bounds how long graceful shutdown waits for in-flight
// requests (default 10s).
func WithDrainTimeout(d time.Duration) Option {
	return func(c *config) { c.drainTimeout = d }
}

// WithMaxBodyBytes caps request body sizes (default 32 MiB, sized for CSV
// uploads to /v1/profile).
func WithMaxBodyBytes(n int64) Option {
	return func(c *config) { c.maxBodyBytes = n }
}

// WithMaxInflight bounds how many heavy requests (advise, profile,
// lod/profile) execute concurrently; excess requests wait in a bounded
// queue (WithQueueDepth) and anything past that is shed immediately with
// 429 overloaded + Retry-After. 0 (the default) disables admission
// control. Cheap control-plane endpoints (/healthz, /v1/metrics, /v1/kb,
// reload) bypass the gate so the server stays observable and steerable
// under overload.
func WithMaxInflight(n int) Option {
	return func(c *config) { c.maxInflight = n }
}

// WithQueueDepth bounds how many requests may wait for an inflight slot
// before the server sheds load (default: equal to WithMaxInflight; 0
// sheds the moment all slots are busy). Requires WithMaxInflight > 0.
// The depth is the overload latency contract: an admitted request waits
// at most ~queueDepth/maxInflight service times, independent of offered
// load.
func WithQueueDepth(n int) Option {
	return func(c *config) { c.queueDepth = n }
}

// WithManifestRequired refuses any POST /v1/kb/reload that cannot present
// a verifiable provenance manifest: the manifest must exist (shard reloads
// must name one explicitly), verify against the artifact, satisfy the
// signature policy, and continue the currently served manifest's lineage
// (dataset hash, grid fingerprint). Violations are 422 manifest_mismatch;
// a valid manifest hot-swaps normally.
func WithManifestRequired() Option {
	return func(c *config) { c.manifestRequired = true }
}

// WithManifestKey pins the ed25519 public key reload manifests must be
// signed with. With a key pinned, unsigned manifests (and manifests signed
// by any other key) are refused even when WithManifestRequired is off —
// whenever a manifest is presented, it must carry this key's signature.
func WithManifestKey(pub ed25519.PublicKey) Option {
	return func(c *config) { c.manifestKey = pub }
}

// WithManifest attaches the verified provenance manifest of the initially
// served knowledge base, seeding the reload chain: subsequent reloads must
// agree with its dataset hash and grid fingerprint. GET /v1/kb reports its
// root and signer. The caller is responsible for having verified it
// (cmd/openbi's serve does so at startup).
func WithManifest(m *provenance.Manifest) Option {
	return func(c *config) { c.manifest = m }
}

// New builds a Server around an engine. The engine's currently published
// snapshot becomes generation 0; subsequent /v1/kb/reload calls bump the
// generation. Invalid options fail eagerly with oberr.ErrBadConfig.
func New(engine *core.Engine, opts ...Option) (*Server, error) {
	cfg := config{
		cacheSize:    1024,
		batchWindow:  2 * time.Millisecond,
		batchMax:     64,
		reqTimeout:   10 * time.Second,
		drainTimeout: 10 * time.Second,
		maxBodyBytes: 32 << 20,
		queueDepth:   -1, // sentinel: default to maxInflight when admission is on
		now:          time.Now,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if engine == nil {
		return nil, fmt.Errorf("server: %w", &oberr.ConfigError{Field: "engine", Reason: "must not be nil"})
	}
	if cfg.cacheSize < 0 {
		return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
			Field: "WithCacheSize", Reason: fmt.Sprintf("need >= 0, got %d", cfg.cacheSize)})
	}
	if cfg.batchMax < 1 {
		return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
			Field: "WithBatchMaxSize", Reason: fmt.Sprintf("need >= 1, got %d", cfg.batchMax)})
	}
	if cfg.batchWindow < 0 {
		return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
			Field: "WithBatchWindow", Reason: "must not be negative"})
	}
	if cfg.reqTimeout <= 0 {
		return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
			Field: "WithRequestTimeout", Reason: "must be positive"})
	}
	if cfg.drainTimeout <= 0 {
		return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
			Field: "WithDrainTimeout", Reason: "must be positive"})
	}
	if cfg.maxBodyBytes <= 0 {
		return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
			Field: "WithMaxBodyBytes", Reason: "must be positive"})
	}
	if cfg.maxInflight < 0 {
		return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
			Field: "WithMaxInflight", Reason: fmt.Sprintf("need >= 0, got %d", cfg.maxInflight)})
	}
	if cfg.queueDepth != -1 {
		if cfg.maxInflight == 0 {
			return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
				Field: "WithQueueDepth", Reason: "requires WithMaxInflight > 0"})
		}
		if cfg.queueDepth < 0 {
			return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
				Field: "WithQueueDepth", Reason: fmt.Sprintf("need >= 0, got %d", cfg.queueDepth)})
		}
	} else {
		cfg.queueDepth = cfg.maxInflight
	}
	if cfg.manifestKey != nil && len(cfg.manifestKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("server: %w", &oberr.ConfigError{
			Field: "WithManifestKey", Reason: fmt.Sprintf("public key has %d bytes, want %d", len(cfg.manifestKey), ed25519.PublicKeySize)})
	}
	s := &Server{
		engine:       engine,
		cache:        newAdviceCache(cfg.cacheSize),
		metrics:      &metrics{},
		kbPath:       cfg.kbPath,
		reqTimeout:   cfg.reqTimeout,
		drainTimeout: cfg.drainTimeout,
		maxBodyBytes: cfg.maxBodyBytes,

		manifestRequired: cfg.manifestRequired,
		manifestKey:      cfg.manifestKey,
		batchWindow:  cfg.batchWindow,
		batchMax:     cfg.batchMax,
		jobs:         make(chan *adviseJob, 4*cfg.batchMax),
		done:         make(chan struct{}),
		now:          cfg.now,
		admission:    newAdmission(cfg.maxInflight, cfg.queueDepth, cfg.reqTimeout),
		latency:      make(map[string]*hist.Histogram),
	}
	s.state.Store(&kbState{snap: engine.KB(), gen: 0, loadedAt: s.now(), source: "engine", manifest: cfg.manifest})
	s.mux = s.routes()
	go s.dispatch()
	return s, nil
}

// ServeHTTP dispatches to the server's routes; Server therefore plugs into
// any http.Server or test recorder directly. The request timeout is
// applied where a handler can actually block (the advise batch wait), not
// here — wrapping every request in a timer context would tax the cache-hit
// fast path with allocations it never needs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Refresh republishes the engine's current KB snapshot as a new serving
// generation. Embedders that populate the engine programmatically —
// RunExperiments or LoadKB from an in-memory source — call this to expose
// the result, since POST /v1/kb/reload only reads files from disk. Safe to
// call concurrently with requests and reloads.
func (s *Server) Refresh() {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	prev := s.state.Load()
	s.state.Store(&kbState{snap: s.engine.KB(), gen: prev.gen + 1, loadedAt: s.now(), source: "engine"})
	s.metrics.reloads.Add(1)
}

// Close stops the batching dispatcher. Advise requests after Close fail
// with 503 server_closed; other endpoints keep working (they do not pass
// through the batcher). Close is idempotent.
func (s *Server) Close() { s.closeOnce.Do(func() { close(s.done) }) }

// Serve runs an http.Server over ln until ctx is canceled, then drains
// in-flight requests for up to the drain timeout before returning. A clean
// drain returns nil even when triggered by ctx cancellation (SIGINT is a
// normal way to stop a server, not an error).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
		defer cancel()
		err := hs.Shutdown(drainCtx)
		s.Close()
		return err
	}
}

// ListenAndServe is Serve on a fresh TCP listener bound to addr.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ctx, ln)
}
