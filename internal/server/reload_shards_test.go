package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"openbi/internal/kb"
)

// testShards splits testKB's records across n shard files in dir,
// round-robin, and returns their paths.
func testShards(t *testing.T, dir string, n int, algorithms ...string) []string {
	t.Helper()
	base := testKB(algorithms...)
	meta := kb.ShardMeta{
		Version: kb.ShardMetaVersion, Seed: 42, Count: n,
		Dataset: "unit", Fingerprint: "cafecafecafecafe",
		Phase1Total: base.Len(), Phase2Total: 0,
	}
	shards := make([]*kb.Shard, n)
	for i := range shards {
		m := meta
		m.Index = i
		shards[i] = &kb.Shard{Meta: m}
	}
	for i, rec := range base.Records {
		sh := shards[i%n]
		sh.Records = append(sh.Records, kb.PositionedRecord{Phase: 1, Index: i, Record: rec})
	}
	paths := make([]string, n)
	for i, sh := range shards {
		paths[i] = filepath.Join(dir, shardFileName(i, n))
		f, err := os.Create(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return paths
}

func shardFileName(i, n int) string {
	return "shard-" + string(rune('0'+i)) + "-of-" + string(rune('0'+n)) + ".json"
}

func shardReloadBody(t *testing.T, paths []string) string {
	t.Helper()
	body, err := json.Marshal(map[string]any{"shards": paths})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestReloadShardsMergesAndServes: POST /v1/kb/reload with shard paths
// must merge them deterministically, publish a new generation, and serve
// advice from the merged KB — the last hop of the scale-out story (shard
// jobs → merge → hot swap, no intermediate kb.json).
func TestReloadShardsMergesAndServes(t *testing.T) {
	dir := t.TempDir()
	paths := testShards(t, dir, 2, "gamma", "delta", "epsilon")
	srv := newTestServer(t, testKB("alpha"))

	// Permuted order must not matter.
	w := do(srv, "POST", "/v1/kb/reload", shardReloadBody(t, []string{paths[1], paths[0]}))
	if w.Code != http.StatusOK {
		t.Fatalf("reload status = %d body = %s", w.Code, w.Body.String())
	}
	re := decode[kbResponse](t, w)
	if re.Generation != 1 || re.Records != 9 || re.Source != "merge of 2 shards" {
		t.Fatalf("reload = %+v", re)
	}
	if len(re.Algorithms) != 3 || re.Algorithms[0] != "delta" {
		t.Fatalf("algorithms = %v", re.Algorithms)
	}
	after := decode[adviseResponse](t, do(srv, "POST", "/v1/advise", `{"severities": [0.1]}`))
	if after.KB.Generation != 1 || len(after.Advice.Ranked) != 3 {
		t.Fatalf("advise after shard reload = %+v", after.KB)
	}
}

func TestReloadShardsErrors(t *testing.T) {
	dir := t.TempDir()
	paths := testShards(t, dir, 2, "gamma", "delta")
	srv := newTestServer(t, testKB("alpha"))

	// Incomplete set: one shard of two.
	w := do(srv, "POST", "/v1/kb/reload", shardReloadBody(t, paths[:1]))
	if w.Code != http.StatusUnprocessableEntity || errCode(t, w) != "shard_mismatch" {
		t.Fatalf("incomplete set: status = %d body = %s", w.Code, w.Body.String())
	}

	// Unreadable shard.
	w = do(srv, "POST", "/v1/kb/reload", shardReloadBody(t, []string{filepath.Join(dir, "absent.json")}))
	if w.Code != http.StatusBadRequest || errCode(t, w) != "shard_unreadable" {
		t.Fatalf("absent shard: status = %d body = %s", w.Code, w.Body.String())
	}

	// Corrupt shard file.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	w = do(srv, "POST", "/v1/kb/reload", shardReloadBody(t, []string{bad}))
	if w.Code != http.StatusBadRequest || errCode(t, w) != "bad_shard" {
		t.Fatalf("corrupt shard: status = %d body = %s", w.Code, w.Body.String())
	}

	// Path and shards together are ambiguous.
	w = do(srv, "POST", "/v1/kb/reload", `{"path": "kb.json", "shards": ["a.json"]}`)
	if w.Code != http.StatusBadRequest || errCode(t, w) != "bad_request" {
		t.Fatalf("path+shards: status = %d body = %s", w.Code, w.Body.String())
	}

	// A failed shard reload must not have bumped the generation.
	if got := decode[kbResponse](t, do(srv, "GET", "/v1/kb", "")); got.Generation != 0 {
		t.Fatalf("generation after failed reloads = %d, want 0", got.Generation)
	}
}

// TestReloadShardsPathConfinement: with a configured KB path, shard paths
// outside its directory are rejected exactly like plain reload paths.
func TestReloadShardsPathConfinement(t *testing.T) {
	dir := t.TempDir()
	other := t.TempDir()
	outside := testShards(t, other, 1, "gamma")
	kbPath := writeKBFile(t, dir, "kb.json", testKB("alpha"))
	srv := newTestServer(t, testKB("alpha"), WithKBPath(kbPath))

	w := do(srv, "POST", "/v1/kb/reload", shardReloadBody(t, outside))
	if w.Code != http.StatusForbidden || errCode(t, w) != "path_not_allowed" {
		t.Fatalf("outside shard: status = %d body = %s", w.Code, w.Body.String())
	}

	inside := testShards(t, dir, 1, "gamma")
	w = do(srv, "POST", "/v1/kb/reload", shardReloadBody(t, inside))
	if w.Code != http.StatusOK {
		t.Fatalf("inside shard: status = %d body = %s", w.Code, w.Body.String())
	}
}
