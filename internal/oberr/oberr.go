// Package oberr defines the typed error taxonomy shared across the OpenBI
// pipeline. Every layer (core, kb, mining, eval, experiment) wraps its
// failures around these sentinels so callers can branch with errors.Is
// without parsing messages, and around the structured error types so
// errors.As recovers the offending identifiers. The public facade
// re-exports the sentinels as openbi.Err*.
package oberr

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors. Match with errors.Is; the structured types below carry
// the detail and report Is(sentinel) == true.
var (
	// ErrColumnNotFound reports a named column absent from a table.
	ErrColumnNotFound = errors.New("column not found")
	// ErrEmptyKB reports an advice query against a knowledge base with no
	// experiment records ("run experiments first").
	ErrEmptyKB = errors.New("knowledge base is empty")
	// ErrUnknownAlgorithm reports a mining-registry name miss.
	ErrUnknownAlgorithm = errors.New("unknown algorithm")
	// ErrUnsupportedFormat reports an ingestion input whose format or
	// extension the pipeline cannot read.
	ErrUnsupportedFormat = errors.New("unsupported input format")
	// ErrBadConfig reports an invalid engine or experiment configuration
	// (fold counts, worker counts, severities, option values).
	ErrBadConfig = errors.New("invalid configuration")
	// ErrTooFewRows reports a dataset too small for the requested split.
	ErrTooFewRows = errors.New("too few rows")
	// ErrBadSyntax reports input data (RDF, CSV) whose format is right but
	// whose content does not parse.
	ErrBadSyntax = errors.New("malformed input")
	// ErrBadManifest reports a provenance manifest that is malformed or
	// internally inconsistent — it cannot be used to verify anything.
	ErrBadManifest = errors.New("bad provenance manifest")
	// ErrManifestMismatch reports an artifact that fails provenance
	// verification against its manifest: a corrupt or reordered record, a
	// wrong document hash, a bad signature, or a broken reload chain.
	ErrManifestMismatch = errors.New("provenance manifest mismatch")
)

// ColumnNotFoundError is the structured form of ErrColumnNotFound.
type ColumnNotFoundError struct {
	Column string // the column that was asked for
	Table  string // the table it was looked up in ("" when unnamed)
}

func (e *ColumnNotFoundError) Error() string {
	if e.Table == "" {
		return fmt.Sprintf("column %q not found", e.Column)
	}
	return fmt.Sprintf("column %q not found in %q", e.Column, e.Table)
}

// Is makes errors.Is(err, ErrColumnNotFound) match.
func (e *ColumnNotFoundError) Is(target error) bool { return target == ErrColumnNotFound }

// UnknownAlgorithmError is the structured form of ErrUnknownAlgorithm.
type UnknownAlgorithmError struct {
	Name  string   // the name that missed
	Known []string // valid registry names, sorted
}

func (e *UnknownAlgorithmError) Error() string {
	return fmt.Sprintf("unknown algorithm %q (have %s)", e.Name, strings.Join(e.Known, ", "))
}

// Is makes errors.Is(err, ErrUnknownAlgorithm) match.
func (e *UnknownAlgorithmError) Is(target error) bool { return target == ErrUnknownAlgorithm }

// ConfigError is the structured form of ErrBadConfig.
type ConfigError struct {
	Field  string // the option or field that failed validation
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("invalid configuration: %s: %s", e.Field, e.Reason)
}

// Is makes errors.Is(err, ErrBadConfig) match.
func (e *ConfigError) Is(target error) bool { return target == ErrBadConfig }

// SyntaxError is the structured form of ErrBadSyntax: a parse failure in
// input data, with the line it happened on when the format is line-aware.
type SyntaxError struct {
	Format string // "n-triples", "turtle", ...
	Line   int    // 1-based input line, 0 when unknown
	Reason string
}

func (e *SyntaxError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s line %d: %s", e.Format, e.Line, e.Reason)
	}
	return fmt.Sprintf("%s: %s", e.Format, e.Reason)
}

// Is makes errors.Is(err, ErrBadSyntax) match.
func (e *SyntaxError) Is(target error) bool { return target == ErrBadSyntax }

// ManifestError is the structured form of ErrManifestMismatch: a
// provenance verification failure, with the first mismatching record
// localized when the failure is record-level.
type ManifestError struct {
	Reason string
	// Record is the 0-based index of the first record that fails
	// verification, or -1 when the mismatch is not record-level (document
	// hash, signature, record count, reload chain).
	Record int
}

func (e *ManifestError) Error() string {
	if e.Record >= 0 {
		return fmt.Sprintf("provenance mismatch at record %d: %s", e.Record, e.Reason)
	}
	return fmt.Sprintf("provenance mismatch: %s", e.Reason)
}

// Is makes errors.Is(err, ErrManifestMismatch) match.
func (e *ManifestError) Is(target error) bool { return target == ErrManifestMismatch }

// UnsupportedFormatError is the structured form of ErrUnsupportedFormat.
type UnsupportedFormatError struct {
	Input  string // the offending path or source name
	Format string // the extension or detected format
}

func (e *UnsupportedFormatError) Error() string {
	return fmt.Sprintf("unsupported input format %q for %s", e.Format, e.Input)
}

// Is makes errors.Is(err, ErrUnsupportedFormat) match.
func (e *UnsupportedFormatError) Is(target error) bool { return target == ErrUnsupportedFormat }
