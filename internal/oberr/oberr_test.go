package oberr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestStructuredErrorsMatchSentinels(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{&ColumnNotFoundError{Column: "class", Table: "budget"}, ErrColumnNotFound},
		{&UnknownAlgorithmError{Name: "j48", Known: []string{"c45"}}, ErrUnknownAlgorithm},
		{&ConfigError{Field: "folds", Reason: "must be >= 2"}, ErrBadConfig},
		{&UnsupportedFormatError{Input: "d.parquet", Format: ".parquet"}, ErrUnsupportedFormat},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Fatalf("%T does not match its sentinel", c.err)
		}
		// Wrapping must preserve the match.
		wrapped := fmt.Errorf("core: %w", c.err)
		if !errors.Is(wrapped, c.sentinel) {
			t.Fatalf("wrapped %T lost its sentinel", c.err)
		}
	}
}

func TestErrorsAsRecoversDetail(t *testing.T) {
	err := fmt.Errorf("mining: %w", &UnknownAlgorithmError{Name: "j48", Known: []string{"c45", "cart"}})
	var ua *UnknownAlgorithmError
	if !errors.As(err, &ua) {
		t.Fatal("errors.As failed")
	}
	if ua.Name != "j48" || len(ua.Known) != 2 {
		t.Fatalf("detail lost: %+v", ua)
	}
}

func TestMessagesNameTheOffender(t *testing.T) {
	e := &ColumnNotFoundError{Column: "ghost", Table: "t"}
	if !strings.Contains(e.Error(), "ghost") || !strings.Contains(e.Error(), "t") {
		t.Fatalf("message = %q", e.Error())
	}
	if msg := (&ColumnNotFoundError{Column: "ghost"}).Error(); strings.Contains(msg, `in "`) {
		t.Fatalf("unnamed table leaked into message: %q", msg)
	}
	if msg := (&UnknownAlgorithmError{Name: "x", Known: []string{"a", "b"}}).Error(); !strings.Contains(msg, "a, b") {
		t.Fatalf("known algorithms missing: %q", msg)
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{ErrColumnNotFound, ErrEmptyKB, ErrUnknownAlgorithm,
		ErrUnsupportedFormat, ErrBadConfig, ErrTooFewRows}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Fatalf("sentinels %d and %d alias", i, j)
			}
		}
	}
}
