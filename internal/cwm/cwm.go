// Package cwm implements the "common representation of data structures"
// of §3.2.1: a lightweight metamodel in the spirit of the OMG Common
// Warehouse Metamodel (CWM) [12]. The paper's implementation sketch (§3.3)
// builds this with Eclipse EMF; this package is the Go substitute — same
// Catalog/Schema/Table/Column containment structure, the same role
// (a structural model of a data source that data-quality measures can be
// annotated onto, §3.2.2), and an XMI-like XML interchange format plus
// JSON for tooling.
package cwm

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"openbi/internal/table"
)

// Annotation is a named measurement attached to a model element — the
// vehicle for the paper's "data quality criteria annotation" step.
type Annotation struct {
	Name  string  `json:"name" xml:"name,attr"`
	Value float64 `json:"value" xml:"value,attr"`
	// Source records which module produced the measure (e.g. "dq").
	Source string `json:"source,omitempty" xml:"source,attr,omitempty"`
}

// ColumnDef describes one attribute of a table in the model.
type ColumnDef struct {
	Name string `json:"name" xml:"name,attr"`
	// Type is "numeric" or "nominal" in this reproduction (CWM's SQL type
	// zoo collapses to what the mining layer distinguishes).
	Type string `json:"type" xml:"type,attr"`
	// Levels carries the nominal dictionary size (0 for numeric columns).
	Levels int `json:"levels,omitempty" xml:"levels,attr,omitempty"`
	// Annotations hold per-column data-quality measures.
	Annotations []Annotation `json:"annotations,omitempty" xml:"annotation"`
}

// TableDef describes one table (or projected LOD class) in the model.
type TableDef struct {
	Name        string       `json:"name" xml:"name,attr"`
	Rows        int          `json:"rows" xml:"rows,attr"`
	Columns     []*ColumnDef `json:"columns" xml:"column"`
	Annotations []Annotation `json:"annotations,omitempty" xml:"annotation"`
}

// Schema groups tables, mirroring CWM's ownedElement containment.
type Schema struct {
	Name   string      `json:"name" xml:"name,attr"`
	Tables []*TableDef `json:"tables" xml:"table"`
}

// Catalog is the model root: one per data source.
type Catalog struct {
	XMLName xml.Name  `json:"-" xml:"Catalog"`
	Name    string    `json:"name" xml:"name,attr"`
	Source  string    `json:"source,omitempty" xml:"source,attr,omitempty"`
	Schemas []*Schema `json:"schemas" xml:"schema"`
}

// NewCatalog returns a catalog with one default schema.
func NewCatalog(name, source string) *Catalog {
	return &Catalog{Name: name, Source: source, Schemas: []*Schema{{Name: "default"}}}
}

// DefaultSchema returns the first schema, creating it when absent.
func (c *Catalog) DefaultSchema() *Schema {
	if len(c.Schemas) == 0 {
		c.Schemas = []*Schema{{Name: "default"}}
	}
	return c.Schemas[0]
}

// Table returns the named table definition from any schema, or nil.
func (c *Catalog) Table(name string) *TableDef {
	for _, s := range c.Schemas {
		for _, t := range s.Tables {
			if t.Name == name {
				return t
			}
		}
	}
	return nil
}

// Column returns the named column of a table definition, or nil.
func (t *TableDef) Column(name string) *ColumnDef {
	for _, col := range t.Columns {
		if col.Name == name {
			return col
		}
	}
	return nil
}

// Annotate attaches (or replaces) a named annotation on the table.
func (t *TableDef) Annotate(name string, value float64, source string) {
	t.Annotations = upsert(t.Annotations, Annotation{Name: name, Value: value, Source: source})
}

// Annotate attaches (or replaces) a named annotation on the column.
func (c *ColumnDef) Annotate(name string, value float64, source string) {
	c.Annotations = upsert(c.Annotations, Annotation{Name: name, Value: value, Source: source})
}

// AnnotationValue returns the named annotation value and whether it exists.
func (t *TableDef) AnnotationValue(name string) (float64, bool) {
	return lookup(t.Annotations, name)
}

// AnnotationValue returns the named annotation value and whether it exists.
func (c *ColumnDef) AnnotationValue(name string) (float64, bool) {
	return lookup(c.Annotations, name)
}

func upsert(list []Annotation, a Annotation) []Annotation {
	for i := range list {
		if list[i].Name == a.Name {
			list[i] = a
			return list
		}
	}
	list = append(list, a)
	sort.SliceStable(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

func lookup(list []Annotation, name string) (float64, bool) {
	for _, a := range list {
		if a.Name == name {
			return a.Value, true
		}
	}
	return 0, false
}

// FromTable builds a table definition (structure only, no annotations)
// from an in-memory table — the "data source module" of §3.3.
func FromTable(t *table.Table) *TableDef {
	def := &TableDef{Name: t.Name, Rows: t.NumRows()}
	for _, col := range t.Columns() {
		cd := &ColumnDef{Name: col.Name, Type: col.Kind.String()}
		if col.Kind == table.Nominal {
			cd.Levels = col.NumLevels()
		}
		def.Columns = append(def.Columns, cd)
	}
	return def
}

// CatalogFromTable wraps FromTable in a single-table catalog.
func CatalogFromTable(t *table.Table, source string) *Catalog {
	c := NewCatalog(t.Name, source)
	c.DefaultSchema().Tables = append(c.DefaultSchema().Tables, FromTable(t))
	return c
}

// WriteXMI serializes the catalog in an XMI-like XML envelope, preserving
// the model-interchange intent of the paper's EMF/CWM implementation.
func WriteXMI(w io.Writer, c *Catalog) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	if _, err := io.WriteString(w,
		`<xmi:XMI xmi:version="2.1" xmlns:xmi="http://schema.omg.org/spec/XMI/2.1" xmlns:cwm="http://www.omg.org/cwm">`+"\n"); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("  ", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("cwm: encoding xmi: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n</xmi:XMI>\n")
	return err
}

// ReadXMI parses a catalog from the WriteXMI format.
func ReadXMI(r io.Reader) (*Catalog, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("cwm: decoding xmi: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if se.Name.Local == "XMI" {
			continue
		}
		if se.Name.Local != "Catalog" {
			return nil, fmt.Errorf("cwm: unexpected root element %q", se.Name.Local)
		}
		var c Catalog
		if err := dec.DecodeElement(&c, &se); err != nil {
			return nil, fmt.Errorf("cwm: decoding catalog: %w", err)
		}
		return &c, nil
	}
}

// WriteJSON serializes the catalog as indented JSON.
func WriteJSON(w io.Writer, c *Catalog) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON parses a catalog from JSON.
func ReadJSON(r io.Reader) (*Catalog, error) {
	var c Catalog
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("cwm: decoding json: %w", err)
	}
	return &c, nil
}
