package cwm

import (
	"bytes"
	"strings"
	"testing"

	"openbi/internal/table"
)

// TestAnnotationEdgeCases: upsert replaces in place, keeps the list
// sorted, and lookups miss cleanly.
func TestAnnotationEdgeCases(t *testing.T) {
	def := &TableDef{Name: "t"}
	def.Annotate("zeta", 1, "dq")
	def.Annotate("alpha", 2, "dq")
	def.Annotate("zeta", 3, "dq") // replace, not append
	if len(def.Annotations) != 2 {
		t.Fatalf("annotations = %+v", def.Annotations)
	}
	if def.Annotations[0].Name != "alpha" || def.Annotations[1].Name != "zeta" {
		t.Fatalf("annotations not sorted: %+v", def.Annotations)
	}
	if v, ok := def.AnnotationValue("zeta"); !ok || v != 3 {
		t.Fatalf("zeta = %v, %v", v, ok)
	}
	if _, ok := def.AnnotationValue("missing"); ok {
		t.Fatal("missing annotation should not resolve")
	}

	col := &ColumnDef{Name: "c"}
	col.Annotate("m", 0.5, "dq")
	col.Annotate("m", 0.7, "dq")
	if v, ok := col.AnnotationValue("m"); !ok || v != 0.7 {
		t.Fatalf("column annotation = %v, %v", v, ok)
	}
}

// TestCatalogLookupEdgeCases: misses return nil, DefaultSchema self-heals
// an empty catalog.
func TestCatalogLookupEdgeCases(t *testing.T) {
	c := &Catalog{Name: "bare"} // no schemas at all
	if s := c.DefaultSchema(); s == nil || s.Name != "default" {
		t.Fatalf("DefaultSchema() = %+v", s)
	}
	if c.Table("nope") != nil {
		t.Fatal("unknown table should be nil")
	}
	def := &TableDef{Name: "t"}
	if def.Column("nope") != nil {
		t.Fatal("unknown column should be nil")
	}
}

// TestFromTableEdgeCases: empty and column-less tables model cleanly.
func TestFromTableEdgeCases(t *testing.T) {
	empty := table.New("empty")
	def := FromTable(empty)
	if def.Rows != 0 || len(def.Columns) != 0 {
		t.Fatalf("empty def = %+v", def)
	}

	tb := table.New("typed")
	num := table.NewNumericColumn("n")
	nom := table.NewNominalColumn("k")
	num.AppendFloat(1)
	nom.AppendLabel("a")
	tb.MustAddColumn(num)
	tb.MustAddColumn(nom)
	def = FromTable(tb)
	if def.Columns[0].Type != "numeric" || def.Columns[0].Levels != 0 {
		t.Fatalf("numeric column def = %+v", def.Columns[0])
	}
	if def.Columns[1].Type != "nominal" || def.Columns[1].Levels != 1 {
		t.Fatalf("nominal column def = %+v", def.Columns[1])
	}
}

// TestXMIRoundTripWithAnnotations: annotations survive the interchange
// format, and malformed documents fail instead of yielding zero values.
func TestXMIRoundTripWithAnnotations(t *testing.T) {
	tb := table.New("src")
	col := table.NewNumericColumn("x")
	col.AppendFloat(1)
	tb.MustAddColumn(col)
	c := CatalogFromTable(tb, "unit")
	def := c.Table("src")
	def.Annotate("completeness", 0.75, "dq")
	def.Columns[0].Annotate("outliers", 0.1, "dq")

	var buf bytes.Buffer
	if err := WriteXMI(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXMI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Table("src").AnnotationValue("completeness"); !ok || v != 0.75 {
		t.Fatalf("table annotation lost: %v %v", v, ok)
	}
	if v, ok := back.Table("src").Column("x").AnnotationValue("outliers"); !ok || v != 0.1 {
		t.Fatalf("column annotation lost: %v %v", v, ok)
	}

	for name, doc := range map[string]string{
		"wrong root": "<NotACatalog/>",
		"truncated":  "<xmi:XMI xmlns:xmi=\"http://schema.omg.org/spec/XMI/2.1\">",
		"empty":      "",
	} {
		if _, err := ReadXMI(strings.NewReader(doc)); err == nil {
			t.Fatalf("%s: ReadXMI should fail", name)
		}
	}
}

// TestJSONRoundTripEdgeCases: JSON interchange round-trips and rejects
// garbage.
func TestJSONRoundTripEdgeCases(t *testing.T) {
	c := NewCatalog("cat", "unit")
	c.DefaultSchema().Tables = append(c.DefaultSchema().Tables, &TableDef{Name: "t", Rows: 2})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Table("t") == nil || back.Table("t").Rows != 2 {
		t.Fatalf("round-trip catalog = %+v", back)
	}
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON should fail")
	}
}
