package cwm

import (
	"bytes"
	"strings"
	"testing"

	"openbi/internal/table"
)

func sampleTable() *table.Table {
	t := table.New("budgets")
	pop := table.NewNumericColumn("population")
	lvl := table.NewNominalColumn("level", "low", "high")
	for i := 0; i < 3; i++ {
		pop.AppendFloat(float64(1000 * (i + 1)))
		lvl.AppendCode(i % 2)
	}
	t.MustAddColumn(pop)
	t.MustAddColumn(lvl)
	return t
}

func TestFromTable(t *testing.T) {
	def := FromTable(sampleTable())
	if def.Name != "budgets" || def.Rows != 3 {
		t.Fatalf("def = %+v", def)
	}
	if len(def.Columns) != 2 {
		t.Fatalf("columns = %d", len(def.Columns))
	}
	if def.Columns[0].Type != "numeric" || def.Columns[1].Type != "nominal" {
		t.Fatal("column types wrong")
	}
	if def.Columns[1].Levels != 2 {
		t.Fatalf("levels = %d", def.Columns[1].Levels)
	}
}

func TestCatalogLookup(t *testing.T) {
	c := CatalogFromTable(sampleTable(), "unit-test")
	if c.Table("budgets") == nil {
		t.Fatal("table lookup failed")
	}
	if c.Table("nope") != nil {
		t.Fatal("phantom table")
	}
	def := c.Table("budgets")
	if def.Column("population") == nil || def.Column("ghost") != nil {
		t.Fatal("column lookup wrong")
	}
}

func TestAnnotateUpsert(t *testing.T) {
	def := FromTable(sampleTable())
	def.Annotate("dq.completeness", 0.9, "dq")
	def.Annotate("dq.completeness", 0.95, "dq") // replace
	def.Annotate("dq.balance", 1, "dq")
	if len(def.Annotations) != 2 {
		t.Fatalf("annotations = %v", def.Annotations)
	}
	if v, ok := def.AnnotationValue("dq.completeness"); !ok || v != 0.95 {
		t.Fatalf("upsert failed: %v %v", v, ok)
	}
	if _, ok := def.AnnotationValue("absent"); ok {
		t.Fatal("phantom annotation")
	}
	// Sorted by name.
	if def.Annotations[0].Name != "dq.balance" {
		t.Fatalf("annotation order: %v", def.Annotations)
	}
}

func TestColumnAnnotate(t *testing.T) {
	def := FromTable(sampleTable())
	col := def.Column("population")
	col.Annotate("dq.outlierRatio", 0.1, "dq")
	if v, ok := col.AnnotationValue("dq.outlierRatio"); !ok || v != 0.1 {
		t.Fatal("column annotation lost")
	}
}

func TestXMIRoundtrip(t *testing.T) {
	c := CatalogFromTable(sampleTable(), "unit-test")
	c.Table("budgets").Annotate("dq.completeness", 0.87, "dq")
	c.Table("budgets").Column("level").Annotate("dq.entropy", 0.99, "dq")

	var buf bytes.Buffer
	if err := WriteXMI(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "xmi:XMI") || !strings.Contains(out, "<Catalog") {
		t.Fatalf("XMI envelope missing:\n%s", out)
	}
	back, err := ReadXMI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != c.Name {
		t.Fatalf("catalog name = %q", back.Name)
	}
	def := back.Table("budgets")
	if def == nil || def.Rows != 3 {
		t.Fatalf("table def lost: %+v", def)
	}
	if v, ok := def.AnnotationValue("dq.completeness"); !ok || v != 0.87 {
		t.Fatalf("annotation lost: %v %v", v, ok)
	}
	if v, ok := def.Column("level").AnnotationValue("dq.entropy"); !ok || v != 0.99 {
		t.Fatalf("column annotation lost: %v %v", v, ok)
	}
}

func TestReadXMIRejectsWrongRoot(t *testing.T) {
	if _, err := ReadXMI(strings.NewReader("<other/>")); err == nil {
		t.Fatal("wrong root should error")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	c := CatalogFromTable(sampleTable(), "unit-test")
	c.Table("budgets").Annotate("dq.duplicateRatio", 0.25, "dq")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Table("budgets").AnnotationValue("dq.duplicateRatio"); !ok || v != 0.25 {
		t.Fatal("JSON roundtrip lost annotation")
	}
}

func TestDefaultSchemaCreation(t *testing.T) {
	c := &Catalog{Name: "bare"}
	if c.DefaultSchema() == nil || len(c.Schemas) != 1 {
		t.Fatal("DefaultSchema should create a schema")
	}
}
