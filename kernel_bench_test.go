// Micro-benchmarks for the columnar kernel layer: the kNN distance/heap
// kernel, the presorted tree split search, and the fused dq.Measure pass.
// These isolate the inner loops that dominate the Phase-1 grid benches so
// kernel regressions show up without rerunning a whole grid.
//
// Run: make bench (or go test -bench 'Kernel|DQMeasure' -benchmem .)
package openbi

import (
	"testing"

	"openbi/internal/dq"
	"openbi/internal/mining"
)

// BenchmarkKNNKernel_Predict measures kNN prediction over a 400-row mixed
// dataset: one iteration scores every row against the full training set
// (the exact shape of a CV test fold pass).
func BenchmarkKNNKernel_Predict(b *testing.B) {
	ds := benchDataset(b, 400)
	kn := mining.NewKNN(5)
	if err := kn.Fit(ds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for r := 0; r < ds.Len(); r++ {
			sink += kn.Predict(ds, r)
		}
	}
	_ = sink
}

// BenchmarkTreeKernel_Fit measures a single C4.5 fit over a 400-row
// dataset — dominated by numeric split search, so it isolates the
// presorted-order walk against the per-node gather+sort it replaced.
func BenchmarkTreeKernel_Fit(b *testing.B) {
	ds := benchDataset(b, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := mining.NewC45Tree()
		if err := tr.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDQMeasure measures the fused data-quality profile over a
// 400-row dataset — the kernel behind both the experiment grid's
// per-cell measurement and the serving-path /v1/profile endpoint.
func BenchmarkDQMeasure(b *testing.B) {
	ds := benchDataset(b, 400)
	t := ds.Table()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := dq.Measure(t, dq.MeasureOptions{ClassColumn: ds.ClassCol})
		if len(p.Columns) == 0 {
			b.Fatal("empty profile")
		}
	}
}
