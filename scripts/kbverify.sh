#!/bin/sh
# KB provenance gate: build a small knowledge base with a signed manifest,
# verify it, then flip one byte inside a record's encoding — the JSON still
# parses, so only the merkle check can notice — and require `openbi kb
# verify` to refuse the KB while naming the corrupted record.
#
# Overrides: ROWS (reference dataset rows, default 40), BIN (CLI path).
set -eu

BIN=${BIN:-/tmp/openbi_kbverify/openbi}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

mkdir -p "$(dirname "$BIN")"
go build -o "$BIN" ./cmd/openbi

"$BIN" kb keygen -out "$DIR/openbi.key" > /dev/null
"$BIN" experiments -rows "${ROWS:-40}" -folds 2 -seed 42 \
  -key "$DIR/openbi.key" -out "$DIR/kb.json" > /dev/null
"$BIN" kb verify -pub "$DIR/openbi.key.pub" "$DIR/kb.json"

# Single-byte flip inside record 0's canonical encoding: every record
# carries the run's fold count, so the first occurrence belongs to
# record 0 (seeds are per-cell and would land on an arbitrary record).
sed -i '0,/"folds": 2/s//"folds": 3/' "$DIR/kb.json"

if out=$("$BIN" kb verify -pub "$DIR/openbi.key.pub" "$DIR/kb.json" 2>&1); then
  echo "kbverify: verify accepted a corrupted KB" >&2
  echo "$out" >&2
  exit 1
fi
case "$out" in
  *"record 0"*)
    echo "kbverify: single-byte corruption refused and localized to record 0" ;;
  *)
    echo "kbverify: verification failed but did not name record 0:" >&2
    echo "$out" >&2
    exit 1 ;;
esac
