#!/usr/bin/env bash
# replaycheck.sh — the record/replay regression gate.
#
# Builds the deterministic seed KB, records a short capture against it,
# then drives the full golden loop: replay the capture against the same KB
# with -fail-on-diff (advice is byte-stable per severity vector, so any
# diff is a real behavior change in this build), promote the zero-diff run
# to a golden, and re-verify the pinned capture against the promoted
# digest. Self-contained — no committed capture needed, because the KB
# build is seeded and the advice it serves is pinned by the e2e golden
# hash.
#
#   make replay-check
#   REPLAY_DURATION=1s make replay-check     # longer capture, more coverage
set -euo pipefail
cd "$(dirname "$0")/.."

REPLAY_KB="${REPLAY_KB:-/tmp/openbi_replay_kb.json}"
REPLAY_DURATION="${REPLAY_DURATION:-500ms}"
WORK="$(mktemp -d -t openbi_replay.XXXXXX)"
BIN="$WORK/openbi"
trap 'rm -rf "$WORK"' EXIT

go build -o "$BIN" ./cmd/openbi
if ! [ -s "$REPLAY_KB" ]; then
  "$BIN" experiments -rows 120 -folds 3 -seed 42 -out "$REPLAY_KB" > /dev/null
fi

"$BIN" loadgen -selfserve -kb "$REPLAY_KB" \
  -mix uniform -seed 7 -concurrency 4 \
  -duration "$REPLAY_DURATION" -warmup 200ms \
  -record "$WORK/captures"
CAPTURE="$WORK/captures/loadgen-uniform-seed7.jsonl"

"$BIN" replay -capture "$CAPTURE" -selfserve -kb "$REPLAY_KB" \
  -fail-on-diff -promote "$WORK/goldens"

PINNED="$WORK/goldens/$(basename "$CAPTURE")"
"$BIN" replay -capture "$PINNED" -selfserve -kb "$REPLAY_KB" \
  -golden "$PINNED.golden.json" -fail-on-diff
echo "replay-check ok: zero diffs and a verified golden round trip"
