// Command benchcmp is the benchmark regression gate: it compares a fresh
// benchjson snapshot against the committed baseline and fails (exit 1)
// when any benchmark present in both regressed by more than the tolerance
// on ns/op or allocs/op.
//
// The two gated metrics carry different noise profiles, so they get
// separate tolerances: allocs/op is deterministic for a given code path
// (a tight default catches real regressions on one-shot runs), while
// ns/op on a shared box swings with scheduler and frequency noise on
// both the baseline and the fresh run, so its tolerance must absorb the
// two-sided worst case. Benchmarks only in one snapshot are reported but
// do not fail the gate (suites grow; subsets shrink).
//
// Usage:
//
//	go run ./scripts/benchcmp [-time-tolerance 0.4] [-alloc-tolerance 0.25] baseline.json fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchLine mirrors scripts/benchjson's per-benchmark entry.
type benchLine struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// snapshot mirrors scripts/benchjson's file layout.
type snapshot struct {
	Go         string      `json:"go"`
	Benchmarks []benchLine `json:"benchmarks"`
}

// gated are the metrics the gate enforces; every other metric (B/op,
// custom b.ReportMetric series) is informational.
var gated = []string{"ns/op", "allocs/op"}

// tolerances is filled from flags in main, one entry per gated metric.
var tolerances = map[string]*float64{}

func load(path string) (map[string]map[string]float64, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]map[string]float64, len(snap.Benchmarks))
	order := make([]string, 0, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		if _, dup := out[b.Name]; !dup {
			order = append(order, b.Name)
		}
		out[b.Name] = b.Metrics
	}
	return out, order, nil
}

func main() {
	tolerances["ns/op"] = flag.Float64("time-tolerance", 0.40, "allowed fractional regression on ns/op")
	tolerances["allocs/op"] = flag.Float64("alloc-tolerance", 0.25, "allowed fractional regression on allocs/op")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-time-tolerance 0.4] [-alloc-tolerance 0.25] baseline.json fresh.json")
		os.Exit(2)
	}
	base, order, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	fresh, freshOrder, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	failures := 0
	compared := 0
	for _, name := range order {
		cur, ok := fresh[name]
		if !ok {
			fmt.Printf("%-50s only in baseline (skipped)\n", name)
			continue
		}
		compared++
		for _, metric := range gated {
			was, okB := base[name][metric]
			now, okF := cur[metric]
			if !okB || !okF {
				continue
			}
			delta := 0.0
			if was > 0 {
				delta = (now - was) / was
			} else if now > 0 {
				delta = 1 // from zero to nonzero is a regression
			}
			status := "ok"
			if delta > *tolerances[metric] {
				status = "REGRESSION"
				failures++
			}
			fmt.Printf("%-50s %-10s %14.1f -> %14.1f  %+7.1f%%  %s\n",
				name, metric, was, now, delta*100, status)
		}
	}
	for _, name := range freshOrder {
		if _, ok := base[name]; !ok {
			fmt.Printf("%-50s new benchmark (no baseline)\n", name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmarks in common")
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d metric(s) regressed beyond tolerance\n", failures)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: %d benchmarks within tolerance of baseline\n", compared)
}
