// Command benchjson converts `go test -bench` output on stdin into the
// repository's BENCH_experiments.json snapshot format: one entry per
// benchmark with every reported metric (ns/op, B/op, allocs/op and any
// custom b.ReportMetric series) keyed by unit. The snapshot is committed
// after substantive perf-relevant PRs so the trajectory of the hot paths
// is reviewable as a diff, not an anecdote.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | go run ./scripts/benchjson > BENCH_experiments.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result.
type benchLine struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// snapshot is the file layout of BENCH_experiments.json.
type snapshot struct {
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	NumCPU     int         `json:"numCPU"`
	Benchmarks []benchLine `json:"benchmarks"`
}

func main() {
	snap := snapshot{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // keep the raw output visible
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines are: name iterations (value unit)+
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := benchLine{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
