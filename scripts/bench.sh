#!/usr/bin/env bash
# bench.sh — refresh the committed benchmark snapshot.
#
# Runs the canonical perf suite (the Phase-1 experiment grid per
# criterion, the serving hot paths, and the sharded scale-out grid) and
# writes BENCH_experiments.json at the repo root. Commit the refreshed
# snapshot with any PR that plausibly moves these numbers, so the perf
# trajectory stays reviewable as a diff.
#
#   make bench                 # default: -benchtime 1s
#   BENCHTIME=3x make bench    # quick and dirty; the 1s default is steadier
#   BENCH='BenchmarkServeAdvise' make bench   # subset
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCH="${BENCH:-BenchmarkF2_Phase1_|BenchmarkServeAdvise|BenchmarkF2_ShardedGrid|BenchmarkDQMeasure|BenchmarkKNNKernel|BenchmarkTreeKernel}"
OUT="${OUT:-BENCH_experiments.json}"

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem . \
  | go run ./scripts/benchjson > "$OUT"
echo "wrote $OUT"

# Streaming LOD ingestion scaling snapshot (stream vs batch at 1x/10x
# triples; B/triple must stay flat for the streaming path).
INGEST_BENCH="${INGEST_BENCH:-BenchmarkIngestLOD}"
INGEST_OUT="${INGEST_OUT:-BENCH_ingest.json}"
go test -run '^$' -bench "$INGEST_BENCH" -benchtime "$BENCHTIME" -benchmem . \
  | go run ./scripts/benchjson > "$INGEST_OUT"
echo "wrote $INGEST_OUT"
