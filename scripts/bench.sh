#!/usr/bin/env bash
# bench.sh — refresh the committed benchmark snapshot.
#
# Runs the canonical perf suite (the Phase-1 experiment grid per
# criterion, the serving hot paths, and the sharded scale-out grid) and
# writes BENCH_experiments.json at the repo root. Commit the refreshed
# snapshot with any PR that plausibly moves these numbers, so the perf
# trajectory stays reviewable as a diff.
#
#   make bench                 # default: -benchtime 1s
#   BENCHTIME=3x make bench    # quick and dirty; the 1s default is steadier
#   BENCH='BenchmarkServeAdvise' make bench   # subset
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCH="${BENCH:-BenchmarkF2_Phase1_|BenchmarkServeAdvise|BenchmarkF2_ShardedGrid|BenchmarkDQMeasure|BenchmarkKNNKernel|BenchmarkTreeKernel|BenchmarkOLAPRollUp|BenchmarkCleanPipeline|BenchmarkServeProfile}"
OUT="${OUT:-BENCH_experiments.json}"

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem . \
  | go run ./scripts/benchjson > "$OUT"
echo "wrote $OUT"

# Streaming LOD ingestion scaling snapshot (stream vs batch at 1x/10x
# triples; B/triple must stay flat for the streaming path).
INGEST_BENCH="${INGEST_BENCH:-BenchmarkIngestLOD}"
INGEST_OUT="${INGEST_OUT:-BENCH_ingest.json}"
go test -run '^$' -bench "$INGEST_BENCH" -benchtime "$BENCHTIME" -benchmem . \
  | go run ./scripts/benchjson > "$INGEST_OUT"
echo "wrote $INGEST_OUT"

# Serving saturation curve (openbi loadgen): seed a small KB, start an
# in-process server over real TCP, and step offered load geometrically
# (100/400/1600/... rps) until p99 blows the 50ms budget. Each fixed level
# keeps a stable benchmark name across runs, so benchcmp pairs them up and
# gates the p99 (encoded as ns/op); the detected knee is reported ungated.
SERVE_OUT="${SERVE_OUT:-BENCH_serve.json}"
SERVE_KB="${SERVE_KB:-/tmp/openbi_bench_kb.json}"
SERVE_DURATION="${SERVE_DURATION:-3s}"
BIN="$(mktemp -t openbi.XXXXXX)"
trap 'rm -f "$BIN"' EXIT
go build -o "$BIN" ./cmd/openbi
if ! [ -s "$SERVE_KB" ]; then
  "$BIN" experiments -rows 120 -folds 3 -seed 42 -out "$SERVE_KB" > /dev/null
fi
"$BIN" loadgen -selfserve -kb "$SERVE_KB" \
  -sweep -sweep-start 100 -sweep-factor 4 -sweep-min-levels 3 -sweep-max-levels 6 \
  -duration "$SERVE_DURATION" -warmup 500ms -p99-budget 50ms \
  -out "$SERVE_OUT"
echo "wrote $SERVE_OUT"
