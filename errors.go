package openbi

import "openbi/internal/oberr"

// Typed error taxonomy. Every pipeline failure wraps one of these
// sentinels; branch with errors.Is. The structured detail types
// (which column, which algorithm, which option) are recoverable with
// errors.As via the *Error types below.
var (
	// ErrColumnNotFound: a named class or attribute column is absent from
	// the table (BuildModel, Advise, Corrupt, dataset construction).
	ErrColumnNotFound = oberr.ErrColumnNotFound
	// ErrEmptyKB: advice was requested before any experiments were run or
	// loaded (Advisor, Advise, MineWithAdvice).
	ErrEmptyKB = oberr.ErrEmptyKB
	// ErrUnknownAlgorithm: a mining-registry name missed (WithAlgorithms,
	// algorithm lookup).
	ErrUnknownAlgorithm = oberr.ErrUnknownAlgorithm
	// ErrUnsupportedFormat: IngestFile met an extension it cannot read.
	ErrUnsupportedFormat = oberr.ErrUnsupportedFormat
	// ErrBadConfig: an option or parameter failed validation (New,
	// cross-validation folds, split fractions).
	ErrBadConfig = oberr.ErrBadConfig
	// ErrTooFewRows: a dataset is too small for the requested split.
	ErrTooFewRows = oberr.ErrTooFewRows
	// ErrBadSyntax: input data (an RDF stream) whose format is right but
	// whose content does not parse.
	ErrBadSyntax = oberr.ErrBadSyntax
	// ErrBadManifest: a provenance manifest that cannot be parsed or is
	// structurally invalid (wrong version, truncated, trailing bytes).
	ErrBadManifest = oberr.ErrBadManifest
	// ErrManifestMismatch: a knowledge base failed verification against
	// its provenance manifest — corrupted records, a swapped manifest, a
	// broken reload chain, or a signature policy violation.
	ErrManifestMismatch = oberr.ErrManifestMismatch
)

// Structured error detail types, recoverable with errors.As.
type (
	// ColumnNotFoundError carries the missing column and table names.
	ColumnNotFoundError = oberr.ColumnNotFoundError
	// UnknownAlgorithmError carries the missed name and the valid ones.
	UnknownAlgorithmError = oberr.UnknownAlgorithmError
	// ConfigError carries the offending option or field.
	ConfigError = oberr.ConfigError
	// UnsupportedFormatError carries the input path and its format.
	UnsupportedFormatError = oberr.UnsupportedFormatError
	// SyntaxError carries the format and line of a parse failure.
	SyntaxError = oberr.SyntaxError
	// ManifestError carries the failing record index (-1 when the mismatch
	// is not record-level) of a provenance verification failure.
	ManifestError = oberr.ManifestError
)
