package openbi

import (
	"bytes"
	"runtime"
	"testing"

	"openbi/internal/core"
	"openbi/internal/dq"
	"openbi/internal/rdf"
	"openbi/internal/synth"
)

// lodDocument serializes a dirty municipal LOD graph with the given
// entity count, repeated `copies` times (raw duplicate triples — the
// multi-portal case the paper motivates).
func lodDocument(b *testing.B, entities, copies int) ([]byte, int) {
	b.Helper()
	g, err := synth.MunicipalBudgetLOD(synth.LODSpec{Entities: entities, Seed: 42, Dirtiness: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < copies; i++ {
		if err := rdf.WriteNTriples(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
	return buf.Bytes(), g.Len() * copies
}

// reportIngestMetrics attaches the two scaling metrics next to ns/op and
// B/op: bytes allocated per streamed triple (must stay flat as the
// document grows — allocation cost is per triple, not per graph) and the
// live working set the path needs resident at completion, measured after
// a GC with the path's intermediate state still referenced (the streaming
// path holds sketch + projector + table; the batch path holds the graph +
// profile + table).
func reportIngestMetrics(b *testing.B, triples int, run func() any) {
	b.ReportAllocs()
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	allocStart, liveStart := ms.TotalAlloc, ms.HeapAlloc
	var keep any
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep = run()
	}
	b.StopTimer()
	runtime.GC()
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.TotalAlloc-allocStart)/float64(b.N)/float64(triples), "B/triple")
	if ms.HeapAlloc > liveStart {
		b.ReportMetric(float64(ms.HeapAlloc-liveStart), "live-B")
	} else {
		b.ReportMetric(0, "live-B")
	}
	runtime.KeepAlive(keep)
}

// streamState keeps every streaming intermediate alive for the live-B
// measurement.
type streamState struct {
	sketch *dq.LODSketch
	proj   *rdf.Projector
	ing    *core.LODIngest
}

// batchState keeps the batch path's working set alive: the resident
// graph is what the streaming pipeline exists to avoid.
type batchState struct {
	g       *rdf.Graph
	profile dq.LODProfile
	table   any
}

// BenchmarkIngestLOD compares the single-pass streaming ingestion
// (decoder → sketch + projector) against the batch path (load graph →
// MeasureLOD → ProjectLargestClass) at 1× and 10× triple counts, plus a
// duplicate-heavy 10× stream over the 1× entity set — the case where the
// streaming path's working set must not grow at all. Outputs land in
// BENCH_ingest.json via `make bench`.
func BenchmarkIngestLOD(b *testing.B) {
	const baseEntities = 1500
	variants := []struct {
		name     string
		entities int
		copies   int
	}{
		{"1x", baseEntities, 1},
		{"10x", baseEntities * 10, 1},
		{"dup10x", baseEntities, 10}, // 10x raw triples, same distinct graph
	}
	opts := rdf.ProjectOptions{LargestClass: true}
	for _, v := range variants {
		data, triples := lodDocument(b, v.entities, v.copies)
		b.Run("stream-"+v.name, func(b *testing.B) {
			reportIngestMetrics(b, triples, func() any {
				st := &streamState{sketch: dq.NewLODSketch()}
				proj, err := rdf.NewProjector(opts)
				if err != nil {
					b.Fatal(err)
				}
				st.proj = proj
				err = rdf.Stream(bytes.NewReader(data), "nt", func(tr rdf.Triple) error {
					st.sketch.Add(tr)
					return st.proj.Add(tr)
				})
				if err != nil {
					b.Fatal(err)
				}
				t, err := st.proj.Table()
				if err != nil {
					b.Fatal(err)
				}
				st.ing = &core.LODIngest{Table: t, Profile: st.sketch.Profile(), Triples: triples}
				return st
			})
		})
		b.Run("batch-"+v.name, func(b *testing.B) {
			reportIngestMetrics(b, triples, func() any {
				g, err := rdf.ReadNTriples(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				t, err := core.ProjectLargestClass(g)
				if err != nil {
					b.Fatal(err)
				}
				return &batchState{g: g, profile: dq.MeasureLOD(g), table: t}
			})
		})
	}
}
