module openbi

go 1.24
