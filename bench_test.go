// Benchmarks regenerating every experiment of DESIGN.md §2. The paper is a
// position paper without numeric tables, so each bench reproduces one
// element of its framework (Figure 1, Figure 2 phases, the companion grid
// of ref [6]) and reports the headline *shape* metric via b.ReportMetric
// (kappa, hit-rates, losses) next to the usual ns/op.
//
// Run: go test -bench=. -benchmem
package openbi

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"openbi/internal/clean"
	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/experiment"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/olap"
	"openbi/internal/rdf"
	"openbi/internal/stats"
	"openbi/internal/synth"
	"openbi/internal/table"
)

// benchCfg is the shared, deliberately small experiment configuration:
// big enough for stable shapes, small enough that the full bench suite
// runs in minutes.
func benchCfg(seed int64) experiment.Config {
	return experiment.Config{
		Seed:       seed,
		Folds:      3,
		Severities: []float64{0, 0.2, 0.4},
	}
}

func benchDataset(b *testing.B, rows int) *mining.Dataset {
	b.Helper()
	ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: rows, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// buildKB runs Phase 1 once (outside the timer) for benches that need a
// populated knowledge base, returning its immutable serving snapshot.
func buildKB(b *testing.B, ds *mining.Dataset) *kb.Snapshot {
	b.Helper()
	recs, err := experiment.Phase1(context.Background(), benchCfg(42), ds, "bench")
	if err != nil {
		b.Fatal(err)
	}
	base := kb.New()
	for _, r := range recs {
		base.Add(r)
	}
	return base.Snapshot()
}

// ---- F1: the KDD pipeline of Figure 1 ----

// BenchmarkF1_KDDPipeline measures the full end-to-end path: LOD →
// projection (integration) → cleaning (preprocessing) → mining →
// evaluation. One iteration is one complete pipeline run.
func BenchmarkF1_KDDPipeline(b *testing.B) {
	g, err := synth.MunicipalBudgetLOD(synth.LODSpec{Entities: 400, Dirtiness: 0.2, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var lastKappa float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, err := rdf.Project(g, rdf.ProjectOptions{
			Class: rdf.NewIRI(synth.NSDef + "Municipality"),
		})
		if err != nil {
			b.Fatal(err)
		}
		tb = tb.DropColumn("label")
		pipe := clean.Pipeline{Steps: []clean.Step{
			clean.Dedup{},
			clean.Imputer{Strategy: clean.MeanMode, ExcludeColumns: []string{"fundingLevel"}},
		}}
		cleaned, _, err := pipe.Run(tb)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := mining.NewDatasetByName(cleaned, "fundingLevel")
		if err != nil {
			b.Fatal(err)
		}
		m, err := eval.CrossValidate(func() mining.Classifier { return mining.NewC45Tree() }, ds, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		lastKappa = m.Kappa
	}
	b.ReportMetric(lastKappa, "kappa")
}

// ---- F2 Phase 1: one bench per data-quality criterion ----

// benchPhase1Criterion runs the severity sweep of one criterion over the
// full algorithm suite; reports the mean kappa drop from severity 0 to
// the maximum severity (the criterion's aggregate bite).
func benchPhase1Criterion(b *testing.B, crit dq.Criterion) {
	ds := benchDataset(b, 200)
	cfg := benchCfg(42)
	cfg.Criteria = []dq.Criterion{crit}
	var drop float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := experiment.Phase1(context.Background(), cfg, ds, "bench")
		if err != nil {
			b.Fatal(err)
		}
		base := kb.New()
		for _, r := range recs {
			base.Add(r)
		}
		sum, n := 0.0, 0
		for _, alg := range base.Algorithms() {
			curve := base.Curve(alg, crit)
			if len(curve) >= 2 {
				sum += curve[0].Kappa - curve[len(curve)-1].Kappa
				n++
			}
		}
		if n > 0 {
			drop = sum / float64(n)
		}
	}
	b.ReportMetric(drop, "mean-kappa-drop")
}

func BenchmarkF2_Phase1_Completeness(b *testing.B)   { benchPhase1Criterion(b, dq.Completeness) }
func BenchmarkF2_Phase1_Duplicates(b *testing.B)     { benchPhase1Criterion(b, dq.Duplicates) }
func BenchmarkF2_Phase1_Correlation(b *testing.B)    { benchPhase1Criterion(b, dq.Correlation) }
func BenchmarkF2_Phase1_Imbalance(b *testing.B)      { benchPhase1Criterion(b, dq.Imbalance) }
func BenchmarkF2_Phase1_LabelNoise(b *testing.B)     { benchPhase1Criterion(b, dq.LabelNoise) }
func BenchmarkF2_Phase1_AttributeNoise(b *testing.B) { benchPhase1Criterion(b, dq.AttributeNoise) }
func BenchmarkF2_Phase1_Dimensionality(b *testing.B) { benchPhase1Criterion(b, dq.Dimensionality) }

// ---- F2 Phase 2: mixed criteria ----

// BenchmarkF2_Phase2_Mixed runs the canonical pair combinations at
// severity 0.3 and reports the mean interaction (actual − additive
// prediction); negative values are the super-additive degradation the
// paper's Phase 2 exists to expose.
func BenchmarkF2_Phase2_Mixed(b *testing.B) {
	ds := benchDataset(b, 200)
	cfg := benchCfg(42)
	base := buildKB(b, ds)
	combos := experiment.DefaultCombos([]dq.Criterion{
		dq.Completeness, dq.LabelNoise, dq.Imbalance,
	})
	var interaction float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mixed, _, err := experiment.Phase2(context.Background(), cfg, ds, "bench", base, combos, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, m := range mixed {
			sum += m.Interaction()
		}
		interaction = sum / float64(len(mixed))
	}
	b.ReportMetric(interaction, "mean-interaction")
}

// ---- F2 sharded: the scale-out path ----

// BenchmarkF2_ShardedGrid measures the full sharded KB construction path —
// run every shard of a 2-way plan, then kb.Merge — against the identical
// monolithic grid, so the scale-out overhead (duplicate cell preparation
// on shard boundaries, positioning, merge validation) stays visible in the
// perf trajectory. One iteration builds one complete knowledge base.
func BenchmarkF2_ShardedGrid(b *testing.B) {
	ds := benchDataset(b, 200)
	cfg := benchCfg(42)
	cfg.Criteria = []dq.Criterion{dq.Completeness, dq.LabelNoise}
	combos := experiment.DefaultCombos(cfg.Criteria)

	b.Run("monolithic", func(b *testing.B) {
		b.ReportAllocs()
		var records int
		for i := 0; i < b.N; i++ {
			p1, err := experiment.Phase1(context.Background(), cfg, ds, "bench")
			if err != nil {
				b.Fatal(err)
			}
			base := kb.New()
			for _, r := range p1 {
				base.Add(r)
			}
			_, p2, err := experiment.Phase2(context.Background(), cfg, ds, "bench", base.Snapshot(), combos, 0.3)
			if err != nil {
				b.Fatal(err)
			}
			records = len(p1) + len(p2)
		}
		b.ReportMetric(float64(records), "records")
	})

	b.Run("sharded-2", func(b *testing.B) {
		b.ReportAllocs()
		var records int
		for i := 0; i < b.N; i++ {
			shards := make([]*kb.Shard, 2)
			for s := range shards {
				sh, err := experiment.RunShard(context.Background(), cfg, ds, "bench", experiment.ShardRun{
					Plan:   experiment.ShardPlan{Index: s, Count: 2},
					Combos: combos,
				})
				if err != nil {
					b.Fatal(err)
				}
				shards[s] = sh
			}
			merged, err := kb.Merge(shards...)
			if err != nil {
				b.Fatal(err)
			}
			records = merged.Len()
		}
		b.ReportMetric(float64(records), "records")
	})
}

// ---- F2: knowledge-base population and advice ----

// BenchmarkF2_KnowledgeBase measures building the sensitivity table from
// a populated knowledge base (the DQ4DM artifact itself).
func BenchmarkF2_KnowledgeBase(b *testing.B) {
	base := buildKB(b, benchDataset(b, 200))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algs, _, cells := base.SensitivityTable()
		if len(algs) == 0 || len(cells) == 0 {
			b.Fatal("empty sensitivity table")
		}
	}
}

// BenchmarkF2_Advisor measures one complete advice call (profile → ranked
// recommendation) on a corrupted source and reports the advisor's
// validation hit-rate computed once outside the timer.
func BenchmarkF2_Advisor(b *testing.B) {
	ds := benchDataset(b, 200)
	base := buildKB(b, ds)
	dirty, err := inject.Apply(ds.T, ds.ClassCol, []inject.Spec{
		{Criterion: dq.LabelNoise, Severity: 0.3},
		{Criterion: dq.Completeness, Severity: 0.2},
	}, 5)
	if err != nil {
		b.Fatal(err)
	}
	res, err := experiment.Validate(context.Background(), benchCfg(42), ds, base, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var best string
	for i := 0; i < b.N; i++ {
		profile := dq.Measure(dirty, dq.MeasureOptions{ClassColumn: ds.ClassCol})
		advice, err := base.Advise(profile)
		if err != nil {
			b.Fatal(err)
		}
		best = advice.Best().Algorithm
	}
	if best == "" {
		b.Fatal("no advice")
	}
	b.ReportMetric(res.Top1Rate(), "top1-rate")
	b.ReportMetric(res.Top2Rate(), "top2-rate")
	b.ReportMetric(res.MeanRegret, "mean-regret")
}

// ---- T-C1..C6: the companion-paper grid (ref [6]) ----

// benchCriterionTable reproduces one column of the companion grid: a
// single classifier's kappa under one criterion at severity 0.3,
// reported per iteration.
func benchCriterionTable(b *testing.B, algorithm string, crit dq.Criterion) {
	ds := benchDataset(b, 200)
	factory, err := mining.Lookup(algorithm, 42)
	if err != nil {
		b.Fatal(err)
	}
	dirty, err := inject.Apply(ds.T, ds.ClassCol,
		[]inject.Spec{{Criterion: crit, Severity: 0.3}}, 11)
	if err != nil {
		b.Fatal(err)
	}
	evalDS, err := mining.NewDataset(dirty, ds.ClassCol)
	if err != nil {
		b.Fatal(err)
	}
	var kappa float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := eval.CrossValidate(factory, evalDS, 3, 7)
		if err != nil {
			b.Fatal(err)
		}
		kappa = m.Kappa
	}
	b.ReportMetric(kappa, "kappa@0.3")
}

func BenchmarkT_Criterion(b *testing.B) {
	for _, crit := range []dq.Criterion{
		dq.Completeness, dq.LabelNoise, dq.AttributeNoise,
		dq.Imbalance, dq.Correlation, dq.Dimensionality,
	} {
		for _, alg := range []string{"naive-bayes", "c45", "5-nn", "logistic"} {
			b.Run(fmt.Sprintf("%s/%s", crit, alg), func(b *testing.B) {
				benchCriterionTable(b, alg, crit)
			})
		}
	}
}

// ---- E-LOD: LOD integration (§3.2) ----

// BenchmarkE_LODIntegration measures RDF → common representation → DQ
// annotation on a 1000-entity municipal graph.
func BenchmarkE_LODIntegration(b *testing.B) {
	g, err := synth.MunicipalBudgetLOD(synth.LODSpec{Entities: 1000, Dirtiness: 0.1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	class := rdf.NewIRI(synth.NSDef + "Municipality")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, err := rdf.Project(g, rdf.ProjectOptions{Class: class})
		if err != nil {
			b.Fatal(err)
		}
		p := dq.Measure(tb, dq.MeasureOptions{ClassColumn: tb.ColumnIndex("fundingLevel")})
		if p.Rows == 0 {
			b.Fatal("empty projection")
		}
	}
	b.ReportMetric(float64(g.Len()), "triples")
}

// ---- E-DIM: dimensionality reduction (§1, ref [8]) ----

// BenchmarkE_DimReduction compares kNN on a wide noisy table under three
// treatments — nothing, PCA to 95% variance, and tree-based attribute
// selection — reporting each treatment's kappa. The paper's complaint is
// visible in the metrics: PCA recovers accuracy but destroys the
// attribute structure a non-expert could read.
func BenchmarkE_DimReduction(b *testing.B) {
	ds, err := synth.MakeClassification(synth.ClassificationSpec{
		Rows: 300, Seed: 4, Irrelevant: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	knn := func() mining.Classifier { return mining.NewKNN(5) }

	var rawK, pcaK, selK float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Treatment 1: nothing.
		m, err := eval.CrossValidate(knn, ds, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		rawK = m.Kappa

		// Treatment 2: PCA projection of the numeric attributes.
		numIdx := ds.T.NumericColumnIndices()
		cols := make([][]float64, 0, len(numIdx))
		for _, j := range numIdx {
			cols = append(cols, table.Floats(ds.T, j))
		}
		pca, err := stats.FitPCA(cols)
		if err != nil {
			b.Fatal(err)
		}
		k := pca.ComponentsFor(0.95)
		proj := pca.Transform(cols, k)
		pt := table.New("pca")
		for c, col := range proj {
			nc := table.NewNumericColumn(fmt.Sprintf("pc%d", c+1))
			nc.Nums = col
			pt.MustAddColumn(nc)
		}
		pt.MustAddColumn(ds.Class().Clone())
		pds, err := mining.NewDataset(pt, pt.NumCols()-1)
		if err != nil {
			b.Fatal(err)
		}
		m, err = eval.CrossValidate(knn, pds, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		pcaK = m.Kappa

		// Treatment 3: keep only attributes a pruned tree actually uses —
		// structure-preserving selection.
		dt := mining.NewC45Tree()
		if err := dt.Fit(ds); err != nil {
			b.Fatal(err)
		}
		used := map[string]bool{}
		for _, name := range ds.T.ColumnNames() {
			if name != "class" && treeUses(dt.Dump(ds), name) {
				used[name] = true
			}
		}
		keep := []int{}
		for j, name := range ds.T.ColumnNames() {
			if used[name] || j == ds.ClassCol {
				keep = append(keep, j)
			}
		}
		if len(keep) > 1 {
			st := table.ColumnView(ds.T, keep)
			sds, err := mining.NewDatasetByName(st, "class")
			if err != nil {
				b.Fatal(err)
			}
			m, err = eval.CrossValidate(knn, sds, 3, 1)
			if err != nil {
				b.Fatal(err)
			}
			selK = m.Kappa
		}
	}
	b.ReportMetric(rawK, "kappa-raw")
	b.ReportMetric(pcaK, "kappa-pca")
	b.ReportMetric(selK, "kappa-select")
}

func treeUses(dump, attr string) bool {
	return len(dump) > 0 && (containsWord(dump, "if "+attr+" ") || containsWord(dump, "if "+attr+" ="))
}

func containsWord(s, w string) bool {
	return len(w) > 0 && len(s) >= len(w) && (indexOf(s, w) >= 0)
}

func indexOf(s, w string) int {
	for i := 0; i+len(w) <= len(s); i++ {
		if s[i:i+len(w)] == w {
			return i
		}
	}
	return -1
}

// ---- E-CLEAN: cleaning efficacy (§2) ----

// BenchmarkE_Cleaning measures the repair loop: corrupt → clean → mine,
// reporting kappa on dirty vs cleaned data.
func BenchmarkE_Cleaning(b *testing.B) {
	ds := benchDataset(b, 240)
	dirtyT, err := inject.Apply(ds.T, ds.ClassCol, []inject.Spec{
		{Criterion: dq.Completeness, Severity: 0.3},
		{Criterion: dq.Duplicates, Severity: 0.2},
	}, 13)
	if err != nil {
		b.Fatal(err)
	}
	factory := func() mining.Classifier { return mining.NewKNN(5) }
	var dirtyK, cleanK float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dds, err := mining.NewDataset(dirtyT, ds.ClassCol)
		if err != nil {
			b.Fatal(err)
		}
		m, err := eval.CrossValidate(factory, dds, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		dirtyK = m.Kappa

		pipe := clean.Pipeline{Steps: []clean.Step{
			clean.Dedup{},
			clean.Imputer{Strategy: clean.KNNImpute, K: 5, ExcludeColumns: []string{"class"}},
		}}
		cleaned, _, err := pipe.Run(dirtyT)
		if err != nil {
			b.Fatal(err)
		}
		cds, err := mining.NewDataset(cleaned, ds.ClassCol)
		if err != nil {
			b.Fatal(err)
		}
		m, err = eval.CrossValidate(factory, cds, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		cleanK = m.Kappa
	}
	b.ReportMetric(dirtyK, "kappa-dirty")
	b.ReportMetric(cleanK, "kappa-cleaned")
}

// ---- E-OLAP: the OpenBI analysis path (§1(i)) ----

// BenchmarkE_OLAP measures cube construction plus a two-dimensional
// roll-up and a pivot over an air-quality projection.
func BenchmarkE_OLAP(b *testing.B) {
	g, err := synth.AirQualityLOD(synth.LODSpec{Entities: 2000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	tb, err := rdf.Project(g, rdf.ProjectOptions{Class: rdf.NewIRI(synth.NSDef + "Station")})
	if err != nil {
		b.Fatal(err)
	}
	tb = tb.DropColumn("label")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cube, err := olap.NewCube(tb, []string{"inCity", "zoneType", "alertLevel"},
			[]olap.Measure{{Column: "no2", Agg: olap.Avg}, {Column: "pm10", Agg: olap.Max}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cube.RollUp("inCity", "alertLevel"); err != nil {
			b.Fatal(err)
		}
		tab, err := cube.Pivot("p", "inCity", "alertLevel", 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tb.NumRows()), "stations")
}

// ---- Serving: the HTTP advice service of internal/server ----

// benchServer builds a serving stack over a Phase-1 knowledge base: the
// engine loads real experiment records, the server fronts it exactly as
// `openbi serve` would.
func benchServer(b *testing.B, opts ...ServerOption) *Server {
	b.Helper()
	ds := benchDataset(b, 160)
	recs, err := experiment.Phase1(context.Background(), benchCfg(42), ds, "bench")
	if err != nil {
		b.Fatal(err)
	}
	base := kb.New()
	for _, r := range recs {
		base.Add(r)
	}
	var buf bytes.Buffer
	if err := base.Save(&buf); err != nil {
		b.Fatal(err)
	}
	eng, err := New(WithSeed(42))
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.LoadKB(&buf); err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(eng, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv
}

// discardWriter is a zero-allocation ResponseWriter so the benchmark
// numbers are the server's own cost, not the test recorder's.
type discardWriter struct {
	h    http.Header
	code int
}

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) WriteHeader(code int)        { d.code = code }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }

var adviseURL = &url.URL{Path: "/v1/advise"}

// adviseClient reuses one request and body reader across calls, so the
// benchmark charges the server's work, not per-call harness construction.
type adviseClient struct {
	w      discardWriter
	reader *bytes.Reader
	req    *http.Request
}

func newAdviseClient() *adviseClient {
	c := &adviseClient{w: discardWriter{h: http.Header{}}, reader: bytes.NewReader(nil)}
	c.req = &http.Request{Method: "POST", URL: adviseURL, Body: io.NopCloser(c.reader)}
	return c
}

func (c *adviseClient) advise(b *testing.B, srv *Server, body []byte) {
	c.reader.Reset(body)
	c.w.code = 0
	srv.ServeHTTP(&c.w, c.req)
	if c.w.code != 200 {
		b.Fatalf("status %d", c.w.code)
	}
}

// BenchmarkServeAdvise measures the three advise paths end to end through
// the handler stack: cold (every request scores the full suite), cache-hit
// (repeated profiles answered from the LRU with the serialized bytes), and
// batched (concurrent requests coalesced into shared scoring passes). The
// cache-hit path must be an order of magnitude lighter in allocations than
// cold — that is the point of caching serialized responses.
func BenchmarkServeAdvise(b *testing.B) {
	bodies := make([][]byte, 64)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf(`{"severities": [%.2f, 0, 0, 0, %.2f, 0, 0]}`,
			float64(i%8)/10, float64(i/8)/10))
	}

	b.Run("cold", func(b *testing.B) {
		srv := benchServer(b, WithCacheSize(0), WithBatchWindow(0))
		c := newAdviseClient()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.advise(b, srv, bodies[i%len(bodies)])
		}
	})

	b.Run("cache-hit", func(b *testing.B) {
		srv := benchServer(b, WithBatchWindow(0))
		c := newAdviseClient()
		c.advise(b, srv, bodies[0]) // warm the entry
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.advise(b, srv, bodies[0])
		}
		b.StopTimer()
		m := srv.Metrics()
		b.ReportMetric(m.CacheHitRate, "hit-rate")
	})

	b.Run("batched", func(b *testing.B) {
		srv := benchServer(b, WithCacheSize(0), WithBatchWindow(200*time.Microsecond))
		b.SetParallelism(16) // 16 concurrent clients even on one CPU
		b.ReportAllocs()
		b.ResetTimer()
		var n atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			c := newAdviseClient()
			for pb.Next() {
				c.advise(b, srv, bodies[int(n.Add(1))%len(bodies)])
			}
		})
		b.StopTimer()
		m := srv.Metrics()
		b.ReportMetric(m.MeanBatchSize, "batch-size")
	})
}

// ---- Columnar analysis/cleaning/profile surfaces (§1(i) + §2) ----

// olapBenchTable is a fact table in the shape open-data roll-ups see:
// a few low-cardinality nominal dimensions over many rows, numeric
// measures, and a sprinkle of missing cells in both.
func olapBenchTable(b *testing.B, rows int) *table.Table {
	b.Helper()
	tb := table.New("facts")
	region := table.NewNominalColumn("region")
	kind := table.NewNominalColumn("kind")
	spend := table.NewNumericColumn("spend")
	pop := table.NewNumericColumn("pop")
	for i := 0; i < rows; i++ {
		if i%37 == 13 {
			region.AppendMissing()
		} else {
			region.AppendLabel(fmt.Sprintf("region-%d", i%11))
		}
		kind.AppendLabel(fmt.Sprintf("kind-%d", (i*7)%5))
		if i%53 == 5 {
			spend.AppendMissing()
		} else {
			spend.AppendFloat(float64(i%997) * 1.25)
		}
		pop.AppendFloat(float64(i % 613))
	}
	tb.MustAddColumn(region)
	tb.MustAddColumn(kind)
	tb.MustAddColumn(spend)
	tb.MustAddColumn(pop)
	return tb
}

// BenchmarkOLAPRollUp measures the grouped aggregation kernel alone: one
// two-dimensional roll-up per iteration over a 20k-row fact table.
func BenchmarkOLAPRollUp(b *testing.B) {
	tb := olapBenchTable(b, 20000)
	cube, err := olap.NewCube(tb, []string{"region", "kind"}, []olap.Measure{
		{Column: "spend", Agg: olap.Sum},
		{Column: "spend", Agg: olap.Avg},
		{Column: "pop", Agg: olap.Max},
	})
	if err != nil {
		b.Fatal(err)
	}
	var cells int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := cube.RollUp("region", "kind")
		if err != nil {
			b.Fatal(err)
		}
		cells = len(out)
	}
	b.ReportMetric(float64(cells), "cells")
}

// BenchmarkCleanPipeline measures the ported repair passes back to back —
// dedup, mean/mode imputation, standardization, outlier fences — over a
// 2k-row dirty table (KNN imputation is benchmarked in BenchmarkE_Cleaning
// and the ablation suite; here the span-ported steps are the subject).
func BenchmarkCleanPipeline(b *testing.B) {
	ds := benchDataset(b, 2000)
	dirtyT, err := inject.Apply(ds.T, ds.ClassCol, []inject.Spec{
		{Criterion: dq.Completeness, Severity: 0.2},
		{Criterion: dq.Duplicates, Severity: 0.2},
		{Criterion: dq.AttributeNoise, Severity: 0.1},
	}, 13)
	if err != nil {
		b.Fatal(err)
	}
	pipe := clean.Pipeline{Steps: []clean.Step{
		clean.Dedup{},
		clean.Imputer{Strategy: clean.MeanMode, ExcludeColumns: []string{"class"}},
		clean.Standardizer{Lowercase: true, Dates: true},
		clean.OutlierFilter{K: 3, ExcludeColumns: []string{"class"}},
	}}
	var kept int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := pipe.Run(dirtyT)
		if err != nil {
			b.Fatal(err)
		}
		kept = out.NumRows()
	}
	b.ReportMetric(float64(kept), "rows-kept")
}

var profileURL = &url.URL{Path: "/v1/profile", RawQuery: "class=class"}

// BenchmarkServeProfile measures POST /v1/profile end to end through the
// handler stack: CSV decode, fused dq.Measure kernels, severity mapping.
func BenchmarkServeProfile(b *testing.B) {
	ds := benchDataset(b, 400)
	dirtyT, err := inject.Apply(ds.T, ds.ClassCol, []inject.Spec{
		{Criterion: dq.Completeness, Severity: 0.1},
		{Criterion: dq.Duplicates, Severity: 0.1},
	}, 7)
	if err != nil {
		b.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := table.WriteCSV(&csvBuf, dirtyT); err != nil {
		b.Fatal(err)
	}
	body := csvBuf.Bytes()
	srv := benchServer(b)
	c := newAdviseClient()
	c.req.URL = profileURL
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.reader.Reset(body)
		c.w.code = 0
		srv.ServeHTTP(&c.w, c.req)
		if c.w.code != 200 {
			b.Fatalf("status %d", c.w.code)
		}
	}
}
