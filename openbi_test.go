package openbi

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole paper pipeline through the public
// facade only: experiments → KB → dirty source → profile → advisor session
// → advice → advised mining → LOD sharing.
func TestPublicAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	eng, err := New(WithSeed(42), WithFolds(3))
	if err != nil {
		t.Fatal(err)
	}

	ref, err := MakeClassification(ClassificationSpec{Rows: 240, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var events int
	rep, err := eng.RunExperiments(ctx, ref, "reference",
		WithProgress(func(Event) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1Records == 0 || rep.Phase2Records == 0 {
		t.Fatalf("experiment report: %+v", rep)
	}
	if events != rep.Phase1Records+rep.Phase2Records {
		t.Fatalf("progress events %d != %d records", events, rep.Phase1Records+rep.Phase2Records)
	}

	dirty, err := Corrupt(ref.T, "class", []InjectSpec{
		{Criterion: LabelNoise, Severity: 0.3},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}

	advisor, err := eng.Advisor()
	if err != nil {
		t.Fatal(err)
	}
	advice, model, err := advisor.Advise(ctx, dirty, "class")
	if err != nil {
		t.Fatal(err)
	}
	if model.Profile.Severity(LabelNoise) < 0.2 {
		t.Fatalf("noise severity = %v", model.Profile.Severity(LabelNoise))
	}
	if len(advice.Ranked) != 8 {
		t.Fatalf("ranking size = %d", len(advice.Ranked))
	}
	if !strings.Contains(advice.Explain(), "The best option is") {
		t.Fatal("explanation missing the paper's phrase")
	}

	result, err := advisor.MineWithAdvice(ctx, dirty, "class", "http://t.example/")
	if err != nil {
		t.Fatal(err)
	}
	if result.Shared.Len() == 0 {
		t.Fatal("no LOD shared")
	}
	if result.Model == nil || result.Advice.Best().Algorithm != result.Algorithm {
		t.Fatal("mining result lacks the threaded model/advice")
	}
}

// TestPublicTypedErrors asserts the exported sentinels match failures
// produced by the facade entry points.
func TestPublicTypedErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := New(WithFolds(0)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("WithFolds(0) err = %v, want ErrBadConfig", err)
	}
	if _, err := New(WithAlgorithms("weka")); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("WithAlgorithms err = %v, want ErrUnknownAlgorithm", err)
	}

	eng, err := New(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := MakeClassification(ClassificationSpec{Rows: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Advise(ctx, ds.T, "class"); !errors.Is(err, ErrEmptyKB) {
		t.Fatalf("empty-KB advise err = %v, want ErrEmptyKB", err)
	}
	if _, err := eng.Advisor(); !errors.Is(err, ErrEmptyKB) {
		t.Fatalf("empty-KB advisor err = %v, want ErrEmptyKB", err)
	}
	_, err = Corrupt(ds.T, "ghost", []InjectSpec{{Criterion: LabelNoise, Severity: 0.2}}, 1)
	if !errors.Is(err, ErrColumnNotFound) {
		t.Fatalf("corrupt err = %v, want ErrColumnNotFound", err)
	}
	var cnf *ColumnNotFoundError
	if !errors.As(err, &cnf) || cnf.Column != "ghost" {
		t.Fatalf("structured detail lost: %v", err)
	}
}

// TestPublicConcurrentServing is the redesign's acceptance scenario: many
// goroutines calling Advise and MineWithAdvice against one populated
// snapshot, under -race.
func TestPublicConcurrentServing(t *testing.T) {
	ctx := context.Background()
	eng, err := New(WithSeed(3), WithFolds(2),
		WithAlgorithms("naive-bayes", "c45"),
		WithCombos([][]Criterion{{Completeness, LabelNoise}}))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := MakeClassification(ClassificationSpec{Rows: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunExperiments(ctx, ref, "reference"); err != nil {
		t.Fatal(err)
	}
	dirty, err := Corrupt(ref.T, "class", []InjectSpec{
		{Criterion: Completeness, Severity: 0.2},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}

	advisor, err := eng.Advisor()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := advisor.Advise(ctx, dirty, "class")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				advice, _, err := advisor.Advise(ctx, dirty, "class")
				if err != nil || advice.Best().Algorithm != want.Best().Algorithm {
					t.Errorf("goroutine %d: advice diverged: %v", g, err)
					return
				}
			}
			if g%3 == 0 {
				res, err := advisor.MineWithAdvice(ctx, dirty, "class", "http://t.example/")
				if err != nil || res.Shared.Len() == 0 {
					t.Errorf("goroutine %d: mine: %v", g, err)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPublicLODPath(t *testing.T) {
	g, err := MunicipalBudgetLOD(LODSpec{Entities: 120, Seed: 1, Dirtiness: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ProjectLargestClass(g)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name != "Municipality" {
		t.Fatalf("largest class = %q", tb.Name)
	}
	p := MeasureQuality(tb, "fundingLevel")
	if p.Completeness >= 1 {
		t.Fatal("dirty LOD should show incompleteness")
	}
}

func TestPublicSuiteAndCriteria(t *testing.T) {
	if len(SuiteNames()) != 8 {
		t.Fatalf("suite = %v", SuiteNames())
	}
	if len(AllCriteria()) != 7 {
		t.Fatalf("criteria = %v", AllCriteria())
	}
	if Completeness.String() != "completeness" || Dimensionality.String() != "dimensionality" {
		t.Fatal("criterion constants wrong")
	}
}

func TestPublicGenerators(t *testing.T) {
	for name, gen := range map[string]func(LODSpec) (*Graph, error){
		"municipal": MunicipalBudgetLOD,
		"air":       AirQualityLOD,
		"education": EducationLOD,
	} {
		g, err := gen(LODSpec{Entities: 30, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Len() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
}

// TestPublicScaleOut drives the sharded KB construction path through the
// public facade: shard the grid, merge the outputs (round-tripped through
// the shard file format), install the result with ReplaceKB, and assert it
// matches a monolithic checkpointed run byte for byte.
func TestPublicScaleOut(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment grid twice")
	}
	ctx := context.Background()
	opts := []Option{WithSeed(42), WithFolds(3), WithAlgorithms("zero-r", "naive-bayes")}
	ref, err := MakeClassification(ClassificationSpec{Rows: 80, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	mono, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mono.RunExperiments(ctx, ref, "reference", WithCheckpoint(t.TempDir())); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := mono.SaveKB(&want); err != nil {
		t.Fatal(err)
	}

	eng, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseShardPlan("0/2")
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*Shard, 0, plan.Count)
	for i := 0; i < plan.Count; i++ {
		sh, err := eng.RunExperimentShard(ctx, ref, "reference", ShardPlan{Index: i, Count: plan.Count})
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip through the wire format the CLI and server consume.
		var buf bytes.Buffer
		if err := sh.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, loaded)
	}
	merged, err := MergeKB(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ReplaceKB(merged); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := eng.SaveKB(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("facade shard+merge KB differs from monolithic run")
	}

	// Multi-corpus: registered corpora run as one atomic publication.
	multi, err := New(append(opts, WithCorpus("a", ref))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi.RunCorpora(ctx); err != nil {
		t.Fatal(err)
	}
	if multi.KB().Len() == 0 {
		t.Fatal("RunCorpora left an empty KB")
	}
}
