package openbi

import (
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole paper pipeline through the public
// facade only: experiments → KB → dirty source → profile → advice →
// advised mining → LOD sharing.
func TestPublicAPIEndToEnd(t *testing.T) {
	eng := NewEngine(42)
	eng.Folds = 3

	ref, err := MakeClassification(ClassificationSpec{Rows: 240, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.RunExperiments(ref, "reference")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1Records == 0 || rep.Phase2Records == 0 {
		t.Fatalf("experiment report: %+v", rep)
	}

	dirty, err := Corrupt(ref.T, "class", []InjectSpec{
		{Criterion: LabelNoise, Severity: 0.3},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	advice, model, err := eng.Advise(dirty, "class")
	if err != nil {
		t.Fatal(err)
	}
	if model.Profile.Severity(LabelNoise) < 0.2 {
		t.Fatalf("noise severity = %v", model.Profile.Severity(LabelNoise))
	}
	if len(advice.Ranked) != 8 {
		t.Fatalf("ranking size = %d", len(advice.Ranked))
	}
	if !strings.Contains(advice.Explain(), "The best option is") {
		t.Fatal("explanation missing the paper's phrase")
	}

	result, err := eng.MineWithAdvice(dirty, "class", "http://t.example/")
	if err != nil {
		t.Fatal(err)
	}
	if result.Shared.Len() == 0 {
		t.Fatal("no LOD shared")
	}
}

func TestPublicLODPath(t *testing.T) {
	g, err := MunicipalBudgetLOD(LODSpec{Entities: 120, Seed: 1, Dirtiness: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ProjectLargestClass(g)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name != "Municipality" {
		t.Fatalf("largest class = %q", tb.Name)
	}
	p := MeasureQuality(tb, "fundingLevel")
	if p.Completeness >= 1 {
		t.Fatal("dirty LOD should show incompleteness")
	}
}

func TestPublicSuiteAndCriteria(t *testing.T) {
	if len(SuiteNames()) != 8 {
		t.Fatalf("suite = %v", SuiteNames())
	}
	if len(AllCriteria()) != 7 {
		t.Fatalf("criteria = %v", AllCriteria())
	}
	if Completeness.String() != "completeness" || Dimensionality.String() != "dimensionality" {
		t.Fatal("criterion constants wrong")
	}
}

func TestPublicGenerators(t *testing.T) {
	for name, gen := range map[string]func(LODSpec) (*Graph, error){
		"municipal": MunicipalBudgetLOD,
		"air":       AirQualityLOD,
		"education": EducationLOD,
	} {
		g, err := gen(LODSpec{Entities: 30, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Len() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
}
