// olapdashboard exercises the OpenBI analysis layer of §1(i): it ingests
// an air-quality LOD export, cleans it, and renders the reporting /
// OLAP / dashboard views a citizen would read — roll-ups, a pivot, a bar
// chart — plus the association rules Apriori finds in the nominal slice.
//
// Run with: go run ./examples/olapdashboard
package main

import (
	"fmt"
	"log"
	"os"

	"openbi"
	"openbi/internal/clean"
	"openbi/internal/mining"
	"openbi/internal/olap"
	"openbi/internal/rdf"
	"openbi/internal/report"
)

func main() {
	g, err := openbi.AirQualityLOD(openbi.LODSpec{Entities: 600, Dirtiness: 0.15, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("air-quality LOD: %d triples\n", g.Len())

	tb, err := rdf.Project(g, rdf.ProjectOptions{
		Class: rdf.NewIRI("http://opendata.example.org/def/Station"),
	})
	if err != nil {
		log.Fatal(err)
	}
	tb = tb.DropColumn("label")

	// Preprocess (Figure 1 phase i): impute the gaps the dirty portal left.
	pipe := clean.Pipeline{Steps: []clean.Step{
		clean.Dedup{},
		clean.Imputer{Strategy: clean.MeanMode, ExcludeColumns: []string{"alertLevel"}},
	}}
	cleaned, reports, err := pipe.Run(tb)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("cleaning step %-18s changed %d cells/rows\n", r.Step, r.Changed)
	}
	fmt.Println()

	// Dashboard 1: pollution by city.
	cube, err := olap.NewCube(cleaned, []string{"inCity", "zoneType", "alertLevel"},
		[]olap.Measure{
			{Column: "no2", Agg: olap.Avg},
			{Column: "pm10", Agg: olap.Avg},
			{Column: "no2", Agg: olap.Count},
		})
	if err != nil {
		log.Fatal(err)
	}
	t1, err := cube.RollUpTable("Average pollution by city", "inCity")
	if err != nil {
		log.Fatal(err)
	}
	t1.Render(os.Stdout)
	fmt.Println()

	// Dashboard 2: slice to industrial zones, pivot alert level by city.
	industrial, err := cube.Slice("zoneType", "industrial")
	if err != nil {
		log.Fatal(err)
	}
	t2, err := industrial.Pivot("Industrial stations: avg NO2 by city × alert level",
		"inCity", "alertLevel", 0)
	if err != nil {
		log.Fatal(err)
	}
	t2.Render(os.Stdout)
	fmt.Println()

	// Dashboard 3: alert distribution as a bar chart.
	cells, err := cube.RollUp("alertLevel")
	if err != nil {
		log.Fatal(err)
	}
	var labels []string
	var counts []float64
	for _, c := range cells {
		labels = append(labels, c.Keys[0])
		counts = append(counts, float64(c.Rows))
	}
	report.BarChart(os.Stdout, "Stations per alert level", labels, counts, 40)
	fmt.Println()

	// Association rules over the nominal attributes (Berti-Equille's
	// rule-quality view [2]): which conditions predict poor air?
	ap := mining.NewApriori()
	ap.MinSupport = 0.05
	ap.MinConfidence = 0.6
	rules, err := ap.Mine(cleaned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top association rules (sup/conf/lift):")
	shown := 0
	for _, r := range rules {
		if shown >= 8 {
			break
		}
		fmt.Println("  " + r.Format(cleaned))
		shown++
	}
}
