// dqexperiments reproduces the paper's experiment stage in full and prints
// the tables and ASCII "figures" of EXPERIMENTS.md: per-criterion
// degradation curves (Phase 1), mixed-criteria interaction (Phase 2), the
// sensitivity matrix, and the advisor validation.
//
// Run with: go run ./examples/dqexperiments   (takes a minute or two)
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"openbi"
	"openbi/internal/dq"
	"openbi/internal/experiment"
	"openbi/internal/kb"
	"openbi/internal/report"
)

func main() {
	ctx := context.Background()
	seed := int64(42)
	ds, err := openbi.MakeClassification(openbi.ClassificationSpec{Rows: 400, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiment.Config{Seed: seed, Folds: 5}

	// ---- Phase 1: simple criteria ----
	fmt.Println("Phase 1: applying algorithms in the presence of single data quality criteria...")
	recs, err := experiment.Phase1(ctx, cfg, ds, "reference")
	if err != nil {
		log.Fatal(err)
	}
	base := kb.New()
	for _, r := range recs {
		base.Add(r)
	}
	// Freeze the write-side store into an immutable snapshot; every read
	// below (curves, sensitivities, Phase-2 predictions, validation) is a
	// precomputed lookup on it.
	snap := base.Snapshot()

	for _, crit := range dq.AllCriteria() {
		tab := report.NewTable(
			fmt.Sprintf("Kappa vs injected %s severity", crit),
			append([]string{"algorithm"}, "0.0", "0.1", "0.2", "0.3", "0.4", "0.5")...)
		var series []report.Series
		for _, alg := range snap.Algorithms() {
			curve := snap.Curve(alg, crit)
			row := []any{alg}
			s := report.Series{Name: alg}
			for _, p := range curve {
				row = append(row, p.Kappa)
				s.X = append(s.X, p.Severity)
				s.Y = append(s.Y, p.Kappa)
			}
			tab.AddRowf(row...)
			series = append(series, s)
		}
		tab.Render(os.Stdout)
		fmt.Println()
		if crit == dq.LabelNoise || crit == dq.Correlation {
			report.LineChart(os.Stdout,
				fmt.Sprintf("Figure: degradation under %s", crit), series, 64, 14)
			fmt.Println()
		}
	}

	// ---- Sensitivity matrix (the DQ4DM knowledge) ----
	algs, crits, cells := snap.SensitivityTable()
	header := []string{"algorithm"}
	for _, c := range crits {
		header = append(header, c.String())
	}
	sens := report.NewTable("Sensitivity matrix (kappa lost per unit severity)", header...)
	for i, a := range algs {
		row := []any{a}
		for _, v := range cells[i] {
			row = append(row, v)
		}
		sens.AddRowf(row...)
	}
	sens.Render(os.Stdout)
	fmt.Println()

	// ---- Phase 2: mixed criteria ----
	fmt.Println("Phase 2: mixed criteria (pairs at severity 0.3), actual vs additive prediction...")
	combos := experiment.DefaultCombos([]dq.Criterion{
		dq.Completeness, dq.LabelNoise, dq.Imbalance, dq.Correlation,
	})
	mixed, _, err := experiment.Phase2(ctx, cfg, ds, "reference", snap, combos, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	mt := report.NewTable("Mixed-criteria interaction",
		"algorithm", "criteria", "actual kappa", "predicted", "interaction")
	for _, m := range mixed {
		names := ""
		for i, c := range m.Criteria {
			if i > 0 {
				names += "+"
			}
			names += c.String()
		}
		mt.AddRowf(m.Algorithm, names, m.Actual.Kappa, m.PredictedKappa, m.Interaction())
	}
	mt.Render(os.Stdout)
	fmt.Println()

	// ---- Advisor validation ----
	fmt.Println("Validating the advisor on random corruption scenarios...")
	res, err := experiment.Validate(ctx, cfg, ds, snap, 10)
	if err != nil {
		log.Fatal(err)
	}
	vt := report.NewTable("Advisor validation", "scenario", "advised", "empirical best", "regret")
	for _, d := range res.Detail {
		vt.AddRowf(d.Scenario, d.Advised, d.Empirical, d.Regret)
	}
	vt.Render(os.Stdout)
	fmt.Printf("top-1 %.2f, top-2 %.2f, mean regret %.3f (best static policy %q regret %.3f)\n",
		res.Top1Rate(), res.Top2Rate(), res.MeanRegret, res.StaticPolicy, res.StaticRegret)
}
