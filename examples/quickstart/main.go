// Quickstart: the OpenBI pipeline in one page.
//
//  1. Build the DQ4DM knowledge base from controlled experiments (Figure 2,
//     left side), streaming progress as the grid completes.
//  2. Fabricate a dirty open-data source.
//  3. Open an advisor session and ask which algorithm to use ("the best
//     option is ALGORITHM X"), mine with it, and share the result as
//     Linked Open Data.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"openbi"
)

func main() {
	ctx := context.Background()
	eng, err := openbi.New(
		openbi.WithSeed(42),
		openbi.WithFolds(3), // keep the demo fast
	)
	if err != nil {
		log.Fatal(err)
	}

	// A clean, representative reference dataset (§3.1: "initial and
	// representative sample ... manually cleaned").
	ref, err := openbi.MakeClassification(openbi.ClassificationSpec{Rows: 300, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building the DQ4DM knowledge base (Phase 1 + Phase 2)...")
	rep, err := eng.RunExperiments(ctx, ref, "reference",
		openbi.WithProgress(func(ev openbi.Event) {
			if ev.Completed%50 == 0 || ev.Completed == ev.Total {
				fmt.Fprintf(os.Stderr, "  phase %d: %d/%d records\n", ev.Phase, ev.Completed, ev.Total)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge base ready: %d simple + %d mixed records\n\n",
		rep.Phase1Records, rep.Phase2Records)

	// A citizen's dirty download: 25% missing cells and 20% mislabeled rows.
	dirty, err := openbi.Corrupt(ref.T, "class", []openbi.InjectSpec{
		{Criterion: openbi.Completeness, Severity: 0.25},
		{Criterion: openbi.LabelNoise, Severity: 0.20},
	}, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Open an advice session — pinned to the KB snapshot as of now, so its
	// answers stay consistent even if experiments re-run concurrently.
	advisor, err := eng.Advisor()
	if err != nil {
		log.Fatal(err)
	}

	// Profile → advise.
	advice, model, err := advisor.Advise(ctx, dirty, "class")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured completeness %.2f, estimated label noise %.2f\n\n",
		model.Profile.Completeness, model.Profile.NoiseEstimate)
	fmt.Print(advice.Explain())

	// Mine with the advice and share the outcome as LOD (§1(ii)). The
	// result carries the model and advice, so nothing is profiled twice.
	result, err := advisor.MineWithAdvice(ctx, dirty, "class", "http://quickstart.example/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmined with %s: accuracy %.3f, kappa %.3f; shared %d triples of predictions\n",
		result.Algorithm, result.Metrics.Accuracy, result.Metrics.Kappa, result.Shared.Len())
}
