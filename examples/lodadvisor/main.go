// lodadvisor walks the full Linked-Open-Data path of the paper on the
// municipal-budget scenario its introduction motivates:
//
//	LOD stream → graph-level quality profile + common representation
//	(one constant-memory pass) → CWM model → DQ annotation →
//	knowledge-base advice → comparison of the advice on a clean vs a
//	dirty portal export.
//
// Run with: go run ./examples/lodadvisor
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"openbi"
	"openbi/internal/cwm"
	"openbi/internal/dq"
	"openbi/internal/rdf"
)

func main() {
	ctx := context.Background()
	eng, err := openbi.New(openbi.WithSeed(7), openbi.WithFolds(3))
	if err != nil {
		log.Fatal(err)
	}

	// Knowledge base from a reference dataset.
	ref, err := openbi.MakeClassification(openbi.ClassificationSpec{Rows: 300, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.RunExperiments(ctx, ref, "reference"); err != nil {
		log.Fatal(err)
	}

	// One advice session serves both portal scenarios from the same
	// immutable KB snapshot.
	advisor, err := eng.Advisor()
	if err != nil {
		log.Fatal(err)
	}

	for _, scenario := range []struct {
		name      string
		dirtiness float64
	}{
		{"well-curated portal", 0},
		{"messy portal", 0.35},
	} {
		fmt.Printf("==== %s (dirtiness %.2f) ====\n", scenario.name, scenario.dirtiness)
		g, err := openbi.MunicipalBudgetLOD(openbi.LODSpec{
			Entities: 400, Dirtiness: scenario.dirtiness, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := g.Stats()
		fmt.Printf("LOD: %d triples, %d subjects, %d predicates, %d sameAs links\n",
			st.Triples, st.Subjects, st.Predicates, st.SameAsLinks)

		// LOD integration module, streaming: profile the graph and project
		// the Municipality class in one constant-memory pass over the
		// serialized export — the path a portal download would take. The
		// table is byte-identical to batch rdf.Project over the graph.
		var nt bytes.Buffer
		if err := rdf.WriteNTriples(&nt, g); err != nil {
			log.Fatal(err)
		}
		ing, err := openbi.IngestLOD(&nt, "nt", openbi.ProjectOptions{
			Class: rdf.NewIRI("http://opendata.example.org/def/Municipality"),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("graph quality: property completeness %.2f, dangling links %.2f, sameAs/entity %.2f\n",
			ing.Profile.PropertyCompleteness, ing.Profile.DanglingLinkRatio, ing.Profile.SameAsRatio)
		tb := ing.Table.DropColumn("label") // free-text identifier, not an attribute
		fmt.Printf("common representation: %d rows × %d columns (from %d streamed triples)\n",
			tb.NumRows(), tb.NumCols(), ing.Triples)

		// Data quality module: annotate the model, then advise from it.
		advice, model, err := advisor.Advise(ctx, tb, "fundingLevel")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("completeness %.2f, duplicates %.2f, correlation %.2f\n",
			model.Profile.Completeness, model.Profile.DuplicateRatio,
			model.Profile.MeanAbsCorrelation)
		fmt.Print(advice.Explain())

		// The annotated CWM model is itself a shareable artifact (§3.3).
		if scenario.dirtiness > 0 {
			path := "/tmp/openbi-municipality-model.xmi"
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := cwm.WriteXMI(f, model.Catalog); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("annotated CWM model written to %s\n", path)

			// Advice can be reproduced from the model alone, without the data.
			def := model.Catalog.Table(tb.Name)
			fromModel, err := advisor.KB().AdviseSeverities(dq.SeveritiesFromModel(def))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("advice recomputed from the model file alone: %s\n",
				fromModel.Best().Algorithm)
		}
		fmt.Println()
	}
}
