// Advisorserver: embed the OpenBI HTTP advice service in your own program.
//
// The `openbi serve` command wraps exactly this: build (or load) a
// knowledge base on an Engine, wrap the engine in a server, and run it
// with graceful shutdown. Embedding instead of shelling out is useful when
// advice should live next to other handlers, or when the KB is produced
// in-process rather than read from disk.
//
// Run with: go run ./examples/advisorserver
// then:
//
//	curl -s localhost:8080/v1/kb
//	curl -s localhost:8080/v1/advise -d '{"profile": {"label-noise": 0.2, "completeness": 0.3}}'
//	curl -s localhost:8080/v1/metrics
//
// Ctrl-C drains in-flight requests before exiting.
package main

import (
	"context"
	"fmt"
	"log"
	"os/signal"
	"syscall"
	"time"

	"openbi"
)

func main() {
	eng, err := openbi.New(openbi.WithSeed(42), openbi.WithFolds(3))
	if err != nil {
		log.Fatal(err)
	}

	// Populate the knowledge base in-process; a real deployment would more
	// likely eng.LoadKB from a kb.json built offline, and hot-swap later
	// generations via POST /v1/kb/reload.
	ref, err := openbi.MakeClassification(openbi.ClassificationSpec{Rows: 200, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("building the DQ4DM knowledge base...")
	if _, err := eng.RunExperiments(context.Background(), ref, "reference"); err != nil {
		log.Fatal(err)
	}

	srv, err := openbi.NewServer(eng,
		openbi.WithCacheSize(4096),
		openbi.WithBatchWindow(time.Millisecond),
		openbi.WithRequestTimeout(5*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving advice from a %d-record KB on :8080\n", eng.KB().Len())
	if err := srv.ListenAndServe(ctx, ":8080"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and stopped")
}
